/**
 * @file
 * Deterministic random number generation for workloads.
 *
 * A small xoshiro256** implementation so that simulation runs are
 * bit-reproducible across platforms and standard library versions
 * (std::mt19937 would also be deterministic, but distributions are
 * not portable across libstdc++ versions).
 */
#pragma once

#include <cstdint>

namespace dax::sim {

/** xoshiro256** pseudo random generator (deterministic, seedable). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding, as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound), bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free-enough reduction is
        // sufficient for workload generation.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

/**
 * Zipfian generator over [0, n) with parameter theta, matching the
 * YCSB reference implementation (Gray et al. quick approximation).
 */
class Zipf
{
  public:
    Zipf(std::uint64_t n, double theta = 0.99)
        : n_(n), theta_(theta)
    {
        zetan_ = zeta(n_);
        zeta2_ = zeta(2);
        alpha_ = 1.0 / (1.0 - theta_);
        eta_ = (1.0 - pow2(2.0 / static_cast<double>(n_)))
             / (1.0 - zeta2_ / zetan_);
    }

    std::uint64_t
    next(Rng &rng) const
    {
        const double u = rng.uniform();
        const double uz = u * zetan_;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + pow2(0.5))
            return 1;
        const auto v = static_cast<double>(n_)
                     * pow2(eta_ * u - eta_ + 1.0);
        auto idx = static_cast<std::uint64_t>(v);
        return idx >= n_ ? n_ - 1 : idx;
    }

  private:
    double
    zeta(std::uint64_t n) const
    {
        double sum = 0.0;
        // Cap the exact sum; beyond the cap extrapolate with the
        // integral, keeping construction O(1)-ish for huge n.
        const std::uint64_t cap = n < 1000000 ? n : 1000000;
        for (std::uint64_t i = 1; i <= cap; i++)
            sum += 1.0 / pow(static_cast<double>(i));
        if (cap < n) {
            // Extrapolate with the integral of x^-theta from cap to n:
            // x^(1-theta) / (1-theta).
            const double a = 1.0 - theta_;
            sum += (pow(static_cast<double>(n)) * static_cast<double>(n)
                    - pow(static_cast<double>(cap)) * static_cast<double>(cap))
                 / a;
        }
        return sum;
    }

    double pow(double x) const { return __builtin_pow(x, -theta_); }
    double pow2(double x) const { return __builtin_pow(x, alpha_); }

    std::uint64_t n_;
    double theta_;
    double zetan_, zeta2_, alpha_, eta_;
};

} // namespace dax::sim
