/**
 * @file
 * Deterministic random number generation for workloads.
 *
 * A small xoshiro256** implementation so that simulation runs are
 * bit-reproducible across platforms and standard library versions
 * (std::mt19937 would also be deterministic, but distributions are
 * not portable across libstdc++ versions).
 */
#pragma once

#include <cstdint>

namespace dax::sim {

/** xoshiro256** pseudo random generator (deterministic, seedable). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding, as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound), bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift reduction with the rejection loop.
        // Without it, bounds that do not divide 2^64 give some
        // outputs one extra preimage (detectably so once bound
        // approaches 2^63 — see Rng.BelowUnbiasedAtHostileBound). The
        // loop rejects the bottom (2^64 mod bound) fraction of the
        // multiplier range; for workload-sized bounds the rejection
        // probability is ~bound/2^64, so draws are almost always one
        // next() call and existing sequences are unchanged in
        // practice.
        unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            const std::uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                m = static_cast<unsigned __int128>(next()) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /**
     * Advance 2^128 steps (xoshiro256** jump polynomial): carves the
     * period into 2^128 non-overlapping subsequences. Deriving
     * streams as `Rng(seed + i)` gives no such guarantee — two
     * SplitMix-seeded states may land arbitrarily close on the orbit.
     */
    void
    jump()
    {
        static constexpr std::uint64_t kJump[] = {
            0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
            0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
        applyJump(kJump);
    }

    /** Advance 2^192 steps: spaces groups of jump()-derived streams. */
    void
    longJump()
    {
        static constexpr std::uint64_t kLongJump[] = {
            0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
            0x77710069854ee241ULL, 0x39109bb02acbe635ULL};
        applyJump(kLongJump);
    }

    /**
     * The n-th independent substream of this generator: a copy
     * advanced by n jump() calls (n * 2^128 steps). The parent is not
     * disturbed; streams for distinct n never overlap within 2^128
     * draws each.
     */
    Rng
    stream(std::uint64_t n) const
    {
        Rng r = *this;
        for (std::uint64_t i = 0; i < n; i++)
            r.jump();
        return r;
    }

  private:
    void
    applyJump(const std::uint64_t (&poly)[4])
    {
        std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
        for (std::uint64_t word : poly) {
            for (int b = 0; b < 64; b++) {
                if (word & (1ULL << b)) {
                    s0 ^= state_[0];
                    s1 ^= state_[1];
                    s2 ^= state_[2];
                    s3 ^= state_[3];
                }
                next();
            }
        }
        state_[0] = s0;
        state_[1] = s1;
        state_[2] = s2;
        state_[3] = s3;
    }

    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

/**
 * Zipfian generator over [0, n) with parameter theta, matching the
 * YCSB reference implementation (Gray et al. quick approximation).
 */
class Zipf
{
  public:
    Zipf(std::uint64_t n, double theta = 0.99)
        : n_(n), theta_(theta)
    {
        zetan_ = zeta(n_);
        zeta2_ = zeta(2);
        alpha_ = 1.0 / (1.0 - theta_);
        eta_ = (1.0 - pow2(2.0 / static_cast<double>(n_)))
             / (1.0 - zeta2_ / zetan_);
    }

    std::uint64_t
    next(Rng &rng) const
    {
        const double u = rng.uniform();
        const double uz = u * zetan_;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + pow2(0.5))
            return 1;
        const auto v = static_cast<double>(n_)
                     * pow2(eta_ * u - eta_ + 1.0);
        auto idx = static_cast<std::uint64_t>(v);
        return idx >= n_ ? n_ - 1 : idx;
    }

  private:
    double
    zeta(std::uint64_t n) const
    {
        double sum = 0.0;
        // Cap the exact sum; beyond the cap extrapolate with the
        // integral, keeping construction O(1)-ish for huge n.
        const std::uint64_t cap = n < 1000000 ? n : 1000000;
        for (std::uint64_t i = 1; i <= cap; i++)
            sum += 1.0 / pow(static_cast<double>(i));
        if (cap < n) {
            // Extrapolate with the integral of x^-theta from cap to n:
            // x^(1-theta) / (1-theta).
            const double a = 1.0 - theta_;
            sum += (pow(static_cast<double>(n)) * static_cast<double>(n)
                    - pow(static_cast<double>(cap)) * static_cast<double>(cap))
                 / a;
        }
        return sum;
    }

    double pow(double x) const { return __builtin_pow(x, -theta_); }
    double pow2(double x) const { return __builtin_pow(x, alpha_); }

    std::uint64_t n_;
    double theta_;
    double zetan_, zeta2_, alpha_, eta_;
};

} // namespace dax::sim
