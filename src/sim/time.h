/**
 * @file
 * Virtual time for the DaxVM simulation.
 *
 * All simulated latencies are expressed in integer nanoseconds of
 * virtual time. The simulated CPU frequency (paper platform: Cascade
 * Lake fixed at 2.7 GHz) is used to convert between cycles and
 * nanoseconds, e.g. for the page-walk-cycle counters of Table II.
 */
#pragma once

#include <cstdint>

namespace dax::sim {

/** Virtual time in nanoseconds. */
using Time = std::uint64_t;

/** Simulated core frequency in GHz (paper: 2.7 GHz, fixed). */
inline constexpr double kCpuGhz = 2.7;

/** Convert CPU cycles to virtual nanoseconds (rounded). */
constexpr Time
cyclesToNs(double cycles)
{
    return static_cast<Time>(cycles / kCpuGhz + 0.5);
}

/** Convert virtual nanoseconds to CPU cycles. */
constexpr double
nsToCycles(Time ns)
{
    return static_cast<double>(ns) * kCpuGhz;
}

/** Convenience literals for durations. */
constexpr Time operator""_ns(unsigned long long v) { return v; }
constexpr Time operator""_us(unsigned long long v) { return v * 1000; }
constexpr Time operator""_ms(unsigned long long v) { return v * 1000000; }
constexpr Time operator""_s(unsigned long long v) { return v * 1000000000; }

} // namespace dax::sim
