/**
 * @file
 * Lightweight category-based event tracing (gem5 DPRINTF-style).
 *
 * Tracing is off by default and adds one branch per call site when
 * disabled. It writes human-readable lines tagged with the virtual
 * timestamp, e.g.:
 *
 *     [     12.345 us] fault: wp va=0x100003000 ino=7
 *
 * Enable from code (Trace::get().enable(TraceCat::Fault)) or for the
 * whole process with the DAXVM_TRACE environment variable, a comma
 * list of category names or "all":
 *
 *     DAXVM_TRACE=fault,shootdown ./build/examples/webserver
 *
 * The sink defaults to stderr and can be redirected to any FILE* (or
 * captured into a string for tests).
 */
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>

#include "sim/time.h"

namespace dax::sim {

enum class TraceCat : unsigned
{
    Fault = 0,   ///< page/permission faults
    Mmap,        ///< mmap/munmap/mremap (POSIX and DaxVM)
    Shootdown,   ///< IPIs and TLB flushes
    Fs,          ///< allocation, truncate, journal commits
    Daxvm,       ///< attach/detach, zombies, monitor
    Prezero,     ///< pre-zero daemon activity
    kCount,
};

const char *traceCatName(TraceCat cat);

class Trace
{
  public:
    /** Global tracer (reads DAXVM_TRACE on first use). */
    static Trace &get();

    void enable(TraceCat cat) { mask_ |= bit(cat); }
    void disable(TraceCat cat) { mask_ &= ~bit(cat); }
    void enableAll() { mask_ = ~0u; }
    void disableAll() { mask_ = 0; }

    bool
    enabled(TraceCat cat) const
    {
        return (mask_ & bit(cat)) != 0;
    }

    /** Redirect output (nullptr buffers into captured()). */
    void setSink(std::FILE *sink) { sink_ = sink; }

    /** Captured output when the sink is nullptr (tests). */
    const std::string &captured() const { return captured_; }
    void clearCaptured() { captured_.clear(); }

    /** Emit one line (printf-style), tagged with @p now. */
    void log(TraceCat cat, Time now, const char *fmt, ...)
        __attribute__((format(printf, 4, 5)));

    /** Parse a DAXVM_TRACE-style spec ("fault,mmap" or "all"). */
    void enableFromSpec(const std::string &spec);

  private:
    Trace();

    static unsigned
    bit(TraceCat cat)
    {
        return 1u << static_cast<unsigned>(cat);
    }

    unsigned mask_ = 0;
    std::FILE *sink_ = stderr;
    std::string captured_;
};

/** Call-site helper: no-op (one branch) when the category is off. */
#define DAX_TRACE(cat, cpu, ...)                                        \
    do {                                                                \
        auto &traceInstance = ::dax::sim::Trace::get();                 \
        if (traceInstance.enabled(cat))                                 \
            traceInstance.log(cat, (cpu).now(), __VA_ARGS__);           \
    } while (0)

} // namespace dax::sim
