/**
 * @file
 * Lightweight category-based event tracing (gem5 DPRINTF-style).
 *
 * Two renderings share one set of call sites and categories (see
 * sim/span_trace.h for the TraceCat list):
 *
 *  - Text lines: human-readable, tagged with the virtual timestamp,
 *    e.g. `[     12.345 us] fault: wp va=0x100003000 ino=7`. Enable
 *    from code (Trace::get().enable(TraceCat::Fault)) or for the whole
 *    process with DAXVM_TRACE, a comma list of category names or
 *    "all":
 *
 *        DAXVM_TRACE=fault,shootdown ./build/examples/webserver
 *
 *    The sink defaults to stderr and can be redirected to any FILE*
 *    (or captured into a string for tests).
 *
 *  - Structured spans: the same DAX_TRACE call sites double as Instant
 *    events in the SpanRecorder (Trace::get().spans()), and DAX_SPAN
 *    scopes add Begin/End pairs, exportable as Chrome trace_event JSON
 *    or folded stacks. Benches enable this with `--trace FILE`.
 *
 * Both are off by default and add one predictable branch per call site
 * when disabled. reset() restores the pristine state between tests.
 */
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#include "sim/engine.h"
#include "sim/span_trace.h"
#include "sim/time.h"

namespace dax::sim {

/** Span track of a Cpu: engine thread id, or a scratch-Cpu track. */
inline std::uint32_t
spanTrackOf(const Cpu &cpu)
{
    const auto id = static_cast<std::uint32_t>(cpu.threadId());
    // Scratch Cpus commonly carry threadId -1: mask to 16 bits so the
    // scratch track space never wraps into the engine-thread range.
    return cpu.engine() != nullptr ? id
                                   : kScratchTrackBase + (id & 0xffffu);
}

class Trace
{
  public:
    /** Global tracer (reads DAXVM_TRACE on first use). */
    static Trace &get();

    void enable(TraceCat cat) { mask_ |= bit(cat); }
    void disable(TraceCat cat) { mask_ &= ~bit(cat); }
    void enableAll() { mask_ = ~0u; }
    void disableAll() { mask_ = 0; }

    bool
    enabled(TraceCat cat) const
    {
        return (mask_ & bit(cat)) != 0;
    }

    /** True when either rendering of @p cat is live. */
    bool
    wants(TraceCat cat) const
    {
        return enabled(cat) || spans_.enabled(cat);
    }

    /** Structured span recorder sharing the DAX_TRACE call sites. */
    SpanRecorder &spans() { return spans_; }

    /** Redirect output (nullptr buffers into captured()). */
    void setSink(std::FILE *sink) { sink_ = sink; }

    /** Captured output when the sink is nullptr (tests). */
    const std::string &captured() const { return captured_; }
    void clearCaptured() { captured_.clear(); }

    /** Emit one line (printf-style), tagged with @p now. */
    void log(TraceCat cat, Time now, const char *fmt, ...)
        __attribute__((format(printf, 4, 5)));

    /**
     * Emit one event through every live rendering: a text line when
     * the category's text mask is set, an Instant span event when the
     * recorder has it enabled. The call site is instrumented once.
     */
    void event(TraceCat cat, std::uint32_t track, int core, Time now,
               const char *fmt, ...)
        __attribute__((format(printf, 6, 7)));

    /** Parse a DAXVM_TRACE-style spec ("fault,mmap" or "all"). */
    void enableFromSpec(const std::string &spec);

    /**
     * Restore the pristine state: all categories off (text and spans),
     * sink back to stderr, captured text and recorded spans dropped.
     * Lets tests sandbox tracing instead of leaking enabled categories
     * into later tests in the same binary.
     */
    void reset();

  private:
    Trace();

    static unsigned
    bit(TraceCat cat)
    {
        return 1u << static_cast<unsigned>(cat);
    }

    unsigned mask_ = 0;
    std::FILE *sink_ = stderr;
    /** Serializes text-line emission from parallel-engine shards. */
    std::mutex ioMu_;
    std::string captured_;
    SpanRecorder spans_;
};

/** Call-site helper: no-op (one branch) when the category is off. */
#define DAX_TRACE(cat, cpu, ...)                                        \
    do {                                                                \
        auto &traceInstance = ::dax::sim::Trace::get();                 \
        if (traceInstance.wants(cat))                                   \
            traceInstance.event(cat, ::dax::sim::spanTrackOf(cpu),      \
                                (cpu).coreId(), (cpu).now(),            \
                                __VA_ARGS__);                           \
    } while (0)

/**
 * RAII Begin/End span scope. Cheap when recording is off: the
 * constructor takes one predictable branch and leaves the scope inert.
 * The name must be a static string literal.
 */
class SpanScope
{
  public:
    SpanScope(TraceCat cat, const Cpu &cpu, const char *name)
    {
        SpanRecorder &rec = Trace::get().spans();
        if (rec.enabled(cat)) {
            rec_ = &rec;
            cpu_ = &cpu;
            cat_ = cat;
            name_ = name;
            rec.begin(cat, spanTrackOf(cpu), cpu.coreId(), cpu.now(),
                      name);
        }
    }

    ~SpanScope()
    {
        if (rec_ != nullptr) {
            rec_->end(cat_, spanTrackOf(*cpu_), cpu_->coreId(),
                      cpu_->now(), name_);
        }
    }

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

  private:
    SpanRecorder *rec_ = nullptr;
    const Cpu *cpu_ = nullptr;
    const char *name_ = nullptr;
    TraceCat cat_{};
};

#define DAX_SPAN_CONCAT2(a, b) a##b
#define DAX_SPAN_CONCAT(a, b) DAX_SPAN_CONCAT2(a, b)

/** Scope the rest of the block as one named span on @p cpu's track. */
#define DAX_SPAN(cat, cpu, name)                                        \
    ::dax::sim::SpanScope DAX_SPAN_CONCAT(daxSpanScope_, __COUNTER__)(  \
        cat, cpu, name)

} // namespace dax::sim
