/**
 * @file
 * Resource is header-only; this TU exists to keep one definition of its
 * documentation anchor and future non-inline helpers.
 */
#include "sim/resource.h"

namespace dax::sim {
// Intentionally empty.
} // namespace dax::sim
