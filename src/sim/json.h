/**
 * @file
 * Minimal JSON value type with serialization and parsing.
 *
 * Exists so the telemetry layer (sim/metrics.h) and the bench result
 * pipeline can emit and round-trip machine-readable results without an
 * external dependency. Integers are kept exact (64-bit) rather than
 * coerced through double, because metric counters routinely exceed
 * 2^53.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dax::sim {

class Json
{
  public:
    enum class Type { Null, Bool, Int, Uint, Double, String, Array, Object };

    using Array = std::vector<Json>;
    /** std::map keeps object keys sorted: serialization is canonical. */
    using Object = std::map<std::string, Json>;

    Json() : type_(Type::Null) {}
    Json(std::nullptr_t) : type_(Type::Null) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(std::int64_t i) : type_(Type::Int), int_(i) {}
    Json(int i) : type_(Type::Int), int_(i) {}
    Json(std::uint64_t u) : type_(Type::Uint), uint_(u) {}
    Json(unsigned u) : type_(Type::Uint), uint_(u) {}
    Json(double d) : type_(Type::Double), double_(d) {}
    Json(const char *s) : type_(Type::String), string_(s) {}
    Json(std::string s) : type_(Type::String), string_(std::move(s)) {}
    Json(Array a) : type_(Type::Array), array_(std::move(a)) {}
    Json(Object o) : type_(Type::Object), object_(std::move(o)) {}

    static Json array() { return Json(Array{}); }
    static Json object() { return Json(Object{}); }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isNumber() const
    {
        return type_ == Type::Int || type_ == Type::Uint
            || type_ == Type::Double;
    }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool asBool() const { return bool_; }
    std::int64_t asInt() const;
    std::uint64_t asUint() const;
    double asDouble() const;
    const std::string &asString() const { return string_; }

    Array &items() { return array_; }
    const Array &items() const { return array_; }
    Object &fields() { return object_; }
    const Object &fields() const { return object_; }

    /** Array append. */
    void push(Json v) { array_.push_back(std::move(v)); }

    /** Object member access (creates on mutable access). */
    Json &operator[](const std::string &key) { return object_[key]; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Json *find(const std::string &key) const;

    /** Member of type Object/Array present check. */
    bool has(const std::string &key) const { return find(key) != nullptr; }

    /**
     * Serialize. @p indent > 0 pretty-prints with that many spaces per
     * level; 0 emits compact single-line JSON.
     */
    std::string dump(int indent = 0) const;

    /**
     * Parse @p text. @return the value; sets @p error (when non-null)
     * and returns Null on malformed input.
     */
    static Json parse(const std::string &text, std::string *error = nullptr);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double double_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

} // namespace dax::sim
