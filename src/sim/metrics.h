/**
 * @file
 * Unified telemetry layer: a hierarchical registry of typed
 * instruments shared by every subsystem.
 *
 * Subsystems intern instruments once (at construction) and get back
 * cheap handles whose hot-path cost is one pointer-indirect add - no
 * string hashing per event, unlike the old string-keyed StatSet map.
 * Three instrument kinds cover the paper's evaluation needs:
 *
 *  - Counter: monotonically increasing event count, optionally
 *    sharded per simulated core so concurrent workloads do not fight
 *    over one slot and per-core breakdowns stay available;
 *  - Gauge: last-written value, typically published by a *collector*
 *    callback at snapshot time (device channel bytes, lock wait
 *    times, pool depths - state tracked elsewhere);
 *  - LatencyHistogram: log2-bucketed distribution (nanoseconds) with
 *    count/sum/min/max and percentile readout.
 *
 * Names are dotted paths ("vm.faults", "fs.journal.commits"); the
 * MetricsScope helper prepends a subsystem prefix so producers stay
 * decoupled from the global namespace. sys::System owns one registry
 * and rolls everything into a single MetricsSnapshot that serializes
 * to JSON (and parses back - see tests/metrics_test.cc).
 *
 * Nothing here takes locks. Under the parallel engine (docs/
 * engine.md) a registry belongs to one System, and a System is one
 * isolation domain, i.e. one shard: all updates come from a single
 * host thread per epoch, and snapshots roll up between runs. The
 * roll-up order (ascending slot index, instruments by name) is
 * deterministic and asserted in peek().
 */
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/json.h"
#include "sim/time.h"

namespace dax::sim {

class MetricsRegistry;

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

/** Log2-bucketed value distribution. Bucket i (i > 0) holds values in
 *  [2^(i-1), 2^i - 1]; bucket 0 holds exact zeros. */
struct HistogramData
{
    static constexpr unsigned kBuckets = 65;

    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0; ///< valid when count > 0
    std::uint64_t max = 0;

    /** Bucket index of @p v: 0 for 0, else bit_width(v). */
    static unsigned bucketOf(std::uint64_t v);

    /** Largest value bucket @p i can hold. */
    static std::uint64_t bucketUpperBound(unsigned i);

    void record(std::uint64_t v);
    void merge(const HistogramData &other);

    /**
     * Value at quantile @p p in [0, 1], log-linearly interpolated:
     * the rank lands in a log2 bucket, the value interpolates
     * linearly across that bucket's [2^(i-1), 2^i - 1] range by the
     * rank's offset into the bucket, and the result is clamped to the
     * observed [min, max] (0 when empty). Integer math only, so the
     * readout is bit-identical across platforms. Single-sample
     * histograms and p=0 / p=1 are exact; mid-bucket quantiles carry
     * the even-spread assumption (error bounded by the bucket width).
     */
    std::uint64_t percentile(double p) const;

    double mean() const
    {
        return count == 0 ? 0.0
                          : static_cast<double>(sum)
                                / static_cast<double>(count);
    }

    bool operator==(const HistogramData &) const = default;
};

/**
 * Counter handle. Obtain from a MetricsRegistry; a default-constructed
 * handle is unbound and drops increments (so partially wired test
 * fixtures stay safe).
 */
class Counter
{
  public:
    Counter() = default;

    /** Hot path: increment shard 0. */
    void
    add(std::uint64_t delta = 1)
    {
        if (slots_ != nullptr)
            slots_[0] += delta;
    }

    /** Increment the shard of core @p shard (clamped to shard 0). */
    void
    addAt(int shard, std::uint64_t delta = 1)
    {
        if (slots_ != nullptr)
            slots_[static_cast<unsigned>(shard) < shards_ ? shard : 0]
                += delta;
    }

    /** Merged value across shards. */
    std::uint64_t
    value() const
    {
        std::uint64_t total = 0;
        for (unsigned i = 0; i < shards_; i++)
            total += slots_[i];
        return total;
    }

    bool bound() const { return slots_ != nullptr; }

  private:
    friend class MetricsRegistry;
    Counter(std::uint64_t *slots, unsigned shards)
        : slots_(slots), shards_(shards)
    {}

    std::uint64_t *slots_ = nullptr;
    unsigned shards_ = 0;
};

/** Gauge handle (see Counter for binding rules). */
class Gauge
{
  public:
    Gauge() = default;

    void
    set(double v)
    {
        if (value_ != nullptr)
            *value_ = v;
    }

    void
    add(double v)
    {
        if (value_ != nullptr)
            *value_ += v;
    }

    double value() const { return value_ == nullptr ? 0.0 : *value_; }
    bool bound() const { return value_ != nullptr; }

  private:
    friend class MetricsRegistry;
    explicit Gauge(double *value) : value_(value) {}

    double *value_ = nullptr;
};

/** Histogram handle (see Counter for binding rules). */
class LatencyHistogram
{
  public:
    LatencyHistogram() = default;

    void
    record(std::uint64_t v)
    {
        if (shards_ != nullptr)
            shards_[0].record(v);
    }

    void
    recordAt(int shard, std::uint64_t v)
    {
        if (shards_ != nullptr)
            shards_[static_cast<unsigned>(shard) < nShards_ ? shard : 0]
                .record(v);
    }

    /** Merge all shards into one distribution. */
    HistogramData merged() const;

    bool bound() const { return shards_ != nullptr; }

  private:
    friend class MetricsRegistry;
    LatencyHistogram(HistogramData *shards, unsigned nShards)
        : shards_(shards), nShards_(nShards)
    {}

    HistogramData *shards_ = nullptr;
    unsigned nShards_ = 0;
};

/** Point-in-time copy of every instrument, merged across shards. */
struct MetricsSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramData> histograms;

    /** Accumulate @p other (counters/gauges add, histograms merge). */
    void merge(const MetricsSnapshot &other);

    /** Counter value (0 when absent). */
    std::uint64_t
    counter(const std::string &name) const
    {
        auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second;
    }

    /** Gauge value (0 when absent). */
    double
    gauge(const std::string &name) const
    {
        auto it = gauges.find(name);
        return it == gauges.end() ? 0.0 : it->second;
    }

    Json toJson() const;
    static MetricsSnapshot fromJson(const Json &json,
                                    std::string *error = nullptr);

    /** "key=value" lines sorted by key (debug/tool output). */
    std::string toString() const;

    bool operator==(const MetricsSnapshot &) const = default;
};

class MetricsRegistry
{
  public:
    /** @param shards per-core slots for sharded instruments (>= 1). */
    explicit MetricsRegistry(unsigned shards = 1)
        : shards_(shards == 0 ? 1 : shards)
    {}

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    unsigned shards() const { return shards_; }

    /**
     * Intern an instrument. Repeated calls with the same name return
     * a handle to the same storage; registering a name under a
     * different kind throws std::logic_error.
     */
    Counter counter(const std::string &name);
    Gauge gauge(const std::string &name);
    LatencyHistogram histogram(const std::string &name);

    bool has(const std::string &name) const
    {
        return index_.count(name) != 0;
    }

    /** Merged counter value; 0 when @p name is absent or not a counter. */
    std::uint64_t counterValue(const std::string &name) const;
    double gaugeValue(const std::string &name) const;
    HistogramData histogramValue(const std::string &name) const;

    /**
     * Register a callback that publishes sampled state (device channel
     * bytes, lock stats, pool depths) into gauges right before a
     * snapshot. Collectors must not register new instruments from
     * within collect().
     */
    void addCollector(std::function<void()> fn)
    {
        collectors_.push_back(std::move(fn));
    }

    /** Run all collectors (snapshot() does this automatically). */
    void collect();

    /** Collect, then copy out every instrument merged across shards. */
    MetricsSnapshot snapshot();

    /** Copy without running collectors (gauges may be stale). */
    MetricsSnapshot peek() const;

    /** Zero every value; registrations and collectors survive. */
    void reset();

  private:
    struct Entry
    {
        std::string name;
        MetricKind kind;
        std::vector<std::uint64_t> slots;     ///< Counter shards
        double gauge = 0.0;                   ///< Gauge value
        std::vector<HistogramData> hists;     ///< Histogram shards
    };

    Entry &intern(const std::string &name, MetricKind kind);
    const Entry *lookup(const std::string &name) const;

    unsigned shards_;
    std::deque<Entry> entries_; ///< deque: handles stay stable
    std::map<std::string, std::size_t> index_;
    std::vector<std::function<void()>> collectors_;
};

/**
 * Windowed time-series telemetry over one registry: interval
 * snapshots per virtual-time window, yielding counter-rate and
 * histogram-percentile-vs-time series (`daxvm-bench-timeline-v1` in
 * bench JSON, docs/metrics.md).
 *
 * The timeline is passive: tick(now) is called from workload quantum
 * boundaries and rolls a window when `now` crosses its end. Deltas
 * between consecutive peek()s are attributed to the window that
 * closes, so the sum of all window counts equals the run totals
 * exactly (asserted by scripts/bench_diff.py validation). Empty
 * windows are skipped in O(1); windows beyond `maxWindows` are
 * counted in `truncated_windows` rather than silently dropped.
 *
 * Everything is virtual-time driven and single-shard (a System's
 * shared domain), so the series are bit-identical for any
 * DAXVM_SIM_THREADS and never advance simulated time.
 */
class MetricsTimeline
{
  public:
    struct Config
    {
        /** Window width in virtual ns. */
        Time windowNs = 5'000'000;
        /** Only metrics whose name starts with this ("" = all). */
        std::string prefix;
        /** Stored-window cap; excess windows count as truncated. */
        std::size_t maxWindows = 4096;
    };

    /** tick() traceTrack sentinel: no Chrome counter emission. */
    static constexpr std::uint32_t kNoTrack = 0xffffffffu;

    MetricsTimeline(MetricsRegistry &registry, Config config);

    /**
     * Observe virtual time @p now; rolls any windows it crossed. The
     * first tick baselines the registry and opens the first window.
     * @p traceTrack, when not kNoTrack, emits windowed p99 samples as
     * Chrome counter events on that span track at each roll.
     */
    void tick(Time now, std::uint32_t traceTrack = kNoTrack);

    /** Roll the final partial window and freeze the totals. */
    void close(Time now);

    bool closed() const { return closed_; }
    Time windowNs() const { return cfg_.windowNs; }
    std::size_t windowCount() const { return windows_.size(); }
    std::uint64_t truncatedWindows() const { return truncated_; }

    /** One timeline run object (see docs/metrics.md for the schema). */
    Json toJson() const;

  private:
    /** Close the window [windowStart_, boundary) against peek(). */
    void roll(Time boundary, std::uint32_t traceTrack);
    MetricsSnapshot filtered() const;

    MetricsRegistry *registry_;
    Config cfg_;
    bool started_ = false;
    bool closed_ = false;
    Time startNs_ = 0;
    Time windowStart_ = 0;
    MetricsSnapshot baseline_;
    MetricsSnapshot last_;
    std::vector<Json> windows_;
    std::uint64_t truncated_ = 0;
    Json totals_;
};

/** Name-prefix view of a registry ("vm" + "faults" -> "vm.faults"). */
class MetricsScope
{
  public:
    MetricsScope(MetricsRegistry &registry, std::string prefix)
        : registry_(&registry), prefix_(std::move(prefix))
    {}

    Counter counter(const std::string &name)
    {
        return registry_->counter(qualify(name));
    }
    Gauge gauge(const std::string &name)
    {
        return registry_->gauge(qualify(name));
    }
    LatencyHistogram histogram(const std::string &name)
    {
        return registry_->histogram(qualify(name));
    }
    MetricsScope scope(const std::string &sub) const
    {
        return MetricsScope(*registry_, qualify(sub));
    }

    MetricsRegistry &registry() { return *registry_; }

    std::string
    qualify(const std::string &name) const
    {
        return prefix_.empty() ? name : prefix_ + "." + name;
    }

  private:
    MetricsRegistry *registry_;
    std::string prefix_;
};

} // namespace dax::sim
