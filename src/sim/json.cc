/**
 * @file
 * JSON serialization and a small recursive-descent parser.
 */
#include "sim/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dax::sim {

std::int64_t
Json::asInt() const
{
    switch (type_) {
    case Type::Int:
        return int_;
    case Type::Uint:
        return static_cast<std::int64_t>(uint_);
    case Type::Double:
        return static_cast<std::int64_t>(double_);
    default:
        return 0;
    }
}

std::uint64_t
Json::asUint() const
{
    switch (type_) {
    case Type::Int:
        return int_ < 0 ? 0 : static_cast<std::uint64_t>(int_);
    case Type::Uint:
        return uint_;
    case Type::Double:
        return double_ < 0 ? 0 : static_cast<std::uint64_t>(double_);
    default:
        return 0;
    }
}

double
Json::asDouble() const
{
    switch (type_) {
    case Type::Int:
        return static_cast<double>(int_);
    case Type::Uint:
        return static_cast<double>(uint_);
    case Type::Double:
        return double_;
    default:
        return 0.0;
    }
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
}

namespace {

void
escapeString(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * depth), ' ');
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    char buf[64];
    switch (type_) {
    case Type::Null:
        out += "null";
        break;
    case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
    case Type::Int:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(int_));
        out += buf;
        break;
    case Type::Uint:
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(uint_));
        out += buf;
        break;
    case Type::Double:
        if (std::isfinite(double_)) {
            // Round-trip exact for doubles; integral values still get
            // a fractional marker so parsing preserves the type.
            std::snprintf(buf, sizeof(buf), "%.17g", double_);
            out += buf;
            if (out.find_first_of(".eE", out.size() - std::strlen(buf))
                == std::string::npos)
                out += ".0";
        } else {
            out += "null"; // JSON has no inf/nan
        }
        break;
    case Type::String:
        escapeString(out, string_);
        break;
    case Type::Array: {
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        bool first = true;
        for (const auto &v : array_) {
            if (!first)
                out += ',';
            first = false;
            newlineIndent(out, indent, depth + 1);
            v.dumpTo(out, indent, depth + 1);
        }
        newlineIndent(out, indent, depth);
        out += ']';
        break;
    }
    case Type::Object: {
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        bool first = true;
        for (const auto &[key, value] : object_) {
            if (!first)
                out += ',';
            first = false;
            newlineIndent(out, indent, depth + 1);
            escapeString(out, key);
            out += indent > 0 ? ": " : ":";
            value.dumpTo(out, indent, depth + 1);
        }
        newlineIndent(out, indent, depth);
        out += '}';
        break;
    }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    bool failed() const { return !error.empty(); }

    void
    fail(const std::string &what)
    {
        if (error.empty())
            error = what + " at offset " + std::to_string(pos);
    }

    void
    skipWs()
    {
        while (pos < text.size()
               && std::isspace(static_cast<unsigned char>(text[pos])))
            pos++;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            pos++;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (text.compare(pos, n, word) == 0) {
            pos += n;
            return true;
        }
        return false;
    }

    Json
    parseString()
    {
        std::string out;
        if (!consume('"')) {
            fail("expected string");
            return Json();
        }
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                break;
            const char esc = text[pos++];
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos + 4 > text.size()) {
                    fail("truncated \\u escape");
                    return Json();
                }
                const unsigned code = static_cast<unsigned>(
                    std::strtoul(text.substr(pos, 4).c_str(), nullptr, 16));
                pos += 4;
                // Metrics names/paths are ASCII; encode BMP points as
                // UTF-8 for completeness.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default:
                fail("bad escape");
                return Json();
            }
        }
        if (pos >= text.size()) {
            fail("unterminated string");
            return Json();
        }
        pos++; // closing quote
        return Json(std::move(out));
    }

    Json
    parseNumber()
    {
        const std::size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            pos++;
        bool isFloat = false;
        while (pos < text.size()) {
            const char c = text[pos];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                pos++;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '-'
                       || c == '+') {
                if (c == '.' || c == 'e' || c == 'E')
                    isFloat = true;
                pos++;
            } else {
                break;
            }
        }
        const std::string tok = text.substr(start, pos - start);
        if (tok.empty() || tok == "-") {
            fail("expected number");
            return Json();
        }
        if (!isFloat) {
            errno = 0;
            if (tok[0] == '-') {
                const long long v = std::strtoll(tok.c_str(), nullptr, 10);
                if (errno == 0)
                    return Json(static_cast<std::int64_t>(v));
            } else {
                const unsigned long long v =
                    std::strtoull(tok.c_str(), nullptr, 10);
                if (errno == 0)
                    return Json(static_cast<std::uint64_t>(v));
            }
        }
        return Json(std::strtod(tok.c_str(), nullptr));
    }

    Json
    parseValue(int depth)
    {
        if (depth > 128) {
            fail("nesting too deep");
            return Json();
        }
        skipWs();
        if (pos >= text.size()) {
            fail("unexpected end of input");
            return Json();
        }
        const char c = text[pos];
        if (c == '{') {
            pos++;
            Json obj = Json::object();
            skipWs();
            if (consume('}'))
                return obj;
            for (;;) {
                skipWs();
                Json key = parseString();
                if (failed())
                    return Json();
                if (!consume(':')) {
                    fail("expected ':'");
                    return Json();
                }
                obj[key.asString()] = parseValue(depth + 1);
                if (failed())
                    return Json();
                if (consume(','))
                    continue;
                if (consume('}'))
                    return obj;
                fail("expected ',' or '}'");
                return Json();
            }
        }
        if (c == '[') {
            pos++;
            Json arr = Json::array();
            skipWs();
            if (consume(']'))
                return arr;
            for (;;) {
                arr.push(parseValue(depth + 1));
                if (failed())
                    return Json();
                if (consume(','))
                    continue;
                if (consume(']'))
                    return arr;
                fail("expected ',' or ']'");
                return Json();
            }
        }
        if (c == '"')
            return parseString();
        if (literal("true"))
            return Json(true);
        if (literal("false"))
            return Json(false);
        if (literal("null"))
            return Json(nullptr);
        return parseNumber();
    }
};

} // namespace

Json
Json::parse(const std::string &text, std::string *error)
{
    Parser p{text};
    Json v = p.parseValue(0);
    p.skipWs();
    if (!p.failed() && p.pos != text.size())
        p.fail("trailing garbage");
    if (p.failed()) {
        if (error != nullptr)
            *error = p.error;
        return Json();
    }
    if (error != nullptr)
        error->clear();
    return v;
}

} // namespace dax::sim
