/**
 * @file
 * Queueing models for kernel synchronization primitives.
 *
 * Locks do not suspend host execution; they advance the simulated
 * thread's clock to the acquisition time. Busy periods are tracked as
 * exact intervals (see busy_intervals.h): a requester waits only when
 * its request time falls inside a recorded hold, so short critical
 * sections late in another thread's quantum do not falsely serialize
 * the system. The engine's min-clock stepping guarantees every hold
 * that could overlap a request is already recorded.
 *
 * Contention statistics (wait time, acquisitions) are kept per lock so
 * benches can report where time went - e.g. mmap_sem writer queueing
 * in Fig. 8a.
 */
#pragma once

#include <cstdint>
#include <string>

#include "sim/busy_intervals.h"
#include "sim/engine.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace dax::sim {

/**
 * Record a retrospective lock-wait span (the wait is only known at
 * acquisition). One predictable branch when recording is off; zero
 * waits are not recorded, so volume tracks contention, not traffic.
 */
inline void
traceLockWait(Cpu &cpu, const std::string &lockName, Time requested)
{
    SpanRecorder &rec = Trace::get().spans();
    if (rec.enabled(TraceCat::Lock) && cpu.now() > requested) {
        rec.span(TraceCat::Lock, spanTrackOf(cpu), cpu.coreId(),
                 requested, cpu.now(), "lock_wait", lockName);
    }
}

/** Aggregate contention statistics of one lock. */
struct LockStats
{
    std::uint64_t acquisitions = 0;
    Time waitNs = 0;
    Time heldNs = 0;
};

/**
 * Exclusive lock (kernel mutex/spinlock). The spinlock distinction is
 * purely a cost-model concern (short hold times); the queueing model
 * is identical.
 */
class Mutex
{
  public:
    explicit Mutex(std::string name = "mutex") : name_(std::move(name)) {}

    /**
     * Acquire: advances @p cpu to the acquisition time. Because hold
     * durations are unknown at acquisition and requests arrive out of
     * virtual-time order, the acquisition reserves the first gap large
     * enough for the lock's average hold - preventing a later-stepped
     * thread from slotting a long hold into a short idle gap and
     * overlapping a recorded critical section.
     */
    void
    lock(Cpu &cpu)
    {
        const Time requested = cpu.now();
        busy_.pruneBefore(cpu.pruneHorizon(), cpu.engine() != nullptr);
        cpu.advanceTo(busy_.reserveSlot(requested, expectedHold()));
        stats_.acquisitions++;
        stats_.waitNs += cpu.now() - requested;
        heldSince_ = cpu.now();
        traceLockWait(cpu, name_, requested);
    }

    /** Release at the caller's current time. */
    void
    unlock(Cpu &cpu)
    {
        busy_.insert(heldSince_, cpu.now());
        stats_.heldNs += cpu.now() - heldSince_;
    }

    /** Average hold time so far (floor of 50 ns). */
    Time
    expectedHold() const
    {
        if (stats_.acquisitions == 0)
            return 50;
        const Time avg = stats_.heldNs / stats_.acquisitions;
        return avg < 50 ? 50 : avg;
    }

    const LockStats &stats() const { return stats_; }
    const std::string &name() const { return name_; }

    /** Busy periods, for invariant checkers. */
    const BusyIntervals &busy() const { return busy_; }

    /** Mutable busy periods for corruption-injection tests only. */
    BusyIntervals &busyForTest() { return busy_; }

  private:
    std::string name_;
    BusyIntervals busy_;
    Time heldSince_ = 0;
    LockStats stats_;
};

/** RAII guard for Mutex. */
class ScopedLock
{
  public:
    ScopedLock(Mutex &m, Cpu &cpu) : m_(m), cpu_(cpu) { m_.lock(cpu_); }
    ~ScopedLock() { m_.unlock(cpu_); }

    ScopedLock(const ScopedLock &) = delete;
    ScopedLock &operator=(const ScopedLock &) = delete;

  private:
    Mutex &m_;
    Cpu &cpu_;
};

/**
 * Reader/writer semaphore modeling Linux mm->mmap_sem: readers overlap
 * freely, a writer excludes both readers and writers. This single
 * primitive produces the mmap scalability collapse of Fig. 1b / 8a.
 */
class RwSemaphore
{
  public:
    /**
     * @param writerAtomics extra hold time charged at writer
     *        acquire and release (contended-atomics model)
     * @param readerAtomics per-reader-acquisition charge
     */
    explicit RwSemaphore(std::string name = "rwsem",
                         Time writerAtomics = 0, Time readerAtomics = 0)
        : name_(std::move(name)), writerAtomics_(writerAtomics),
          readerAtomics_(readerAtomics)
    {}

    void
    lockRead(Cpu &cpu)
    {
        const Time requested = cpu.now();
        writerBusy_.pruneBefore(cpu.pruneHorizon(),
                                cpu.engine() != nullptr);
        cpu.advanceTo(writerBusy_.firstFree(requested));
        cpu.advance(readerAtomics_);
        readStats_.acquisitions++;
        readStats_.waitNs += cpu.now() - requested;
        readHeldSince_ = cpu.now();
        traceLockWait(cpu, name_, requested);
    }

    void
    unlockRead(Cpu &cpu)
    {
        readerBusy_.insert(readHeldSince_, cpu.now());
        readStats_.heldNs += cpu.now() - readHeldSince_;
    }

    void
    lockWrite(Cpu &cpu)
    {
        const Time requested = cpu.now();
        const bool engineDriven = cpu.engine() != nullptr;
        writerBusy_.pruneBefore(cpu.pruneHorizon(), engineDriven);
        readerBusy_.pruneBefore(cpu.pruneHorizon(), engineDriven);
        // Writers wait for both writers and (possibly coalesced)
        // reader occupancy, and reserve a gap sized by the average
        // writer hold (see Mutex::lock).
        const Time hold = expectedWriterHold();
        Time t = requested;
        for (;;) {
            const Time t2 = readerBusy_.firstFree(
                writerBusy_.reserveSlot(t, hold));
            if (t2 == t)
                break;
            t = t2;
        }
        cpu.advanceTo(t);
        writeStats_.acquisitions++;
        writeStats_.waitNs += cpu.now() - requested;
        heldSince_ = cpu.now();
        traceLockWait(cpu, name_, requested);
        cpu.advance(writerAtomics_);
    }

    void
    unlockWrite(Cpu &cpu)
    {
        cpu.advance(writerAtomics_);
        writerBusy_.insert(heldSince_, cpu.now());
        writeStats_.heldNs += cpu.now() - heldSince_;
    }

    /** Average writer hold time so far (floor of 50 ns). */
    Time
    expectedWriterHold() const
    {
        if (writeStats_.acquisitions == 0)
            return 50;
        const Time avg = writeStats_.heldNs / writeStats_.acquisitions;
        return avg < 50 ? 50 : avg;
    }

    const LockStats &readStats() const { return readStats_; }
    const LockStats &writeStats() const { return writeStats_; }
    const std::string &name() const { return name_; }

    /** Busy periods, for invariant checkers. */
    const BusyIntervals &writerBusy() const { return writerBusy_; }
    const BusyIntervals &readerBusy() const { return readerBusy_; }

    /** Mutable busy periods for corruption-injection tests only. */
    BusyIntervals &writerBusyForTest() { return writerBusy_; }

  private:
    std::string name_;
    Time writerAtomics_ = 0;
    Time readerAtomics_ = 0;
    BusyIntervals writerBusy_;
    BusyIntervals readerBusy_;
    Time heldSince_ = 0;
    Time readHeldSince_ = 0;
    LockStats readStats_;
    LockStats writeStats_;
};

/** RAII guards for RwSemaphore. */
class ScopedReadLock
{
  public:
    ScopedReadLock(RwSemaphore &s, Cpu &cpu) : s_(s), cpu_(cpu)
    {
        s_.lockRead(cpu_);
    }
    ~ScopedReadLock() { s_.unlockRead(cpu_); }

    ScopedReadLock(const ScopedReadLock &) = delete;
    ScopedReadLock &operator=(const ScopedReadLock &) = delete;

  private:
    RwSemaphore &s_;
    Cpu &cpu_;
};

class ScopedWriteLock
{
  public:
    ScopedWriteLock(RwSemaphore &s, Cpu &cpu) : s_(s), cpu_(cpu)
    {
        s_.lockWrite(cpu_);
    }
    ~ScopedWriteLock() { s_.unlockWrite(cpu_); }

    ScopedWriteLock(const ScopedWriteLock &) = delete;
    ScopedWriteLock &operator=(const ScopedWriteLock &) = delete;

  private:
    RwSemaphore &s_;
    Cpu &cpu_;
};

} // namespace dax::sim
