/**
 * @file
 * Lock models are header-only; this TU anchors their documentation and
 * provides formatting helpers for lock statistics.
 */
#include "sim/locks.h"

#include <sstream>

namespace dax::sim {

/** Render lock statistics as a one-line human-readable summary. */
std::string
formatLockStats(const std::string &name, const LockStats &s)
{
    std::ostringstream os;
    os << name << ": acq=" << s.acquisitions
       << " wait_us=" << static_cast<double>(s.waitNs) / 1000.0
       << " held_us=" << static_cast<double>(s.heldNs) / 1000.0;
    return os.str();
}

} // namespace dax::sim
