/**
 * @file
 * Open-addressed hash table for dense 64-bit keys (page/line indices).
 *
 * The simulator's hottest overlays (mem::Device's sparse page store
 * and volatile dirty-line set) are keyed by small integer indices and
 * hit on almost every simulated memory access. std::unordered_map pays
 * a heap node plus a pointer chase per entry there; this table keeps
 * keys and values in two parallel flat arrays with linear probing, a
 * multiplicative (Fibonacci) hash and backshift deletion, so it never
 * accumulates tombstones and lookups stay one cache line deep at
 * typical load factors.
 *
 * Iteration (forEach) visits live slots in ascending slot-index order,
 * which depends only on the inserted key set and the (deterministic)
 * growth history -- never on host pointers -- so drain/crash sweeps
 * that walk the table stay bit-reproducible across runs.
 *
 * The all-ones key is reserved as the empty marker; device indices
 * derived from capacity can never reach it.
 */
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dax::sim {

template <typename V>
class FlatHash64
{
  public:
    static constexpr std::uint64_t kEmptyKey = ~0ULL;

    FlatHash64() = default;

    /** Size the table for @p expected entries without rehashing. */
    void
    reserve(std::size_t expected)
    {
        std::size_t cap = 16;
        while (cap * 7 < expected * 10) // keep load factor under 0.7
            cap *= 2;
        if (cap > keys_.size())
            rehash(cap);
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    V *
    find(std::uint64_t key)
    {
        if (size_ == 0)
            return nullptr;
        const std::size_t idx = probe(key);
        return keys_[idx] == key ? &vals_[idx] : nullptr;
    }

    const V *
    find(std::uint64_t key) const
    {
        if (size_ == 0)
            return nullptr;
        const std::size_t idx = probe(key);
        return keys_[idx] == key ? &vals_[idx] : nullptr;
    }

    bool contains(std::uint64_t key) const { return find(key) != nullptr; }

    /** Value for @p key, default-constructing it on first use. */
    V &
    operator[](std::uint64_t key)
    {
        assert(key != kEmptyKey);
        if (keys_.empty() || (size_ + 1) * 10 > keys_.size() * 7)
            rehash(keys_.empty() ? 16 : keys_.size() * 2);
        const std::size_t idx = probe(key);
        if (keys_[idx] != key) {
            keys_[idx] = key;
            vals_[idx] = V{};
            size_++;
        }
        return vals_[idx];
    }

    /**
     * Remove @p key. Backshift deletion: subsequent probe-chain
     * entries slide up into the hole, so no tombstones are left to
     * rot the table. @return true when the key was present.
     */
    bool
    erase(std::uint64_t key)
    {
        if (size_ == 0)
            return false;
        std::size_t hole = probe(key);
        if (keys_[hole] != key)
            return false;
        const std::size_t mask = keys_.size() - 1;
        std::size_t next = (hole + 1) & mask;
        while (keys_[next] != kEmptyKey) {
            const std::size_t home = slotOf(keys_[next], mask);
            // Shift only entries whose probe chain spans the hole.
            if (((next - home) & mask) >= ((next - hole) & mask)) {
                keys_[hole] = keys_[next];
                vals_[hole] = std::move(vals_[next]);
                hole = next;
            }
            next = (next + 1) & mask;
        }
        keys_[hole] = kEmptyKey;
        vals_[hole] = V{}; // release held resources eagerly
        size_--;
        return true;
    }

    void
    clear()
    {
        std::fill(keys_.begin(), keys_.end(), kEmptyKey);
        for (auto &v : vals_)
            v = V{};
        size_ = 0;
    }

    /** Visit (key, value) pairs in ascending slot-index order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < keys_.size(); i++) {
            if (keys_[i] != kEmptyKey)
                fn(keys_[i], vals_[i]);
        }
    }

    template <typename Fn>
    void
    forEachMut(Fn &&fn)
    {
        for (std::size_t i = 0; i < keys_.size(); i++) {
            if (keys_[i] != kEmptyKey)
                fn(keys_[i], vals_[i]);
        }
    }

  private:
    static std::size_t
    slotOf(std::uint64_t key, std::size_t mask)
    {
        return static_cast<std::size_t>(key * 0x9E3779B97F4A7C15ULL >> 32)
             & mask;
    }

    /** First slot holding @p key, or the empty slot ending its chain. */
    std::size_t
    probe(std::uint64_t key) const
    {
        const std::size_t mask = keys_.size() - 1;
        std::size_t idx = slotOf(key, mask);
        while (keys_[idx] != key && keys_[idx] != kEmptyKey)
            idx = (idx + 1) & mask;
        return idx;
    }

    void
    rehash(std::size_t newCap)
    {
        if (newCap < keys_.size())
            return;
        std::vector<std::uint64_t> oldKeys = std::move(keys_);
        std::vector<V> oldVals = std::move(vals_);
        keys_.assign(newCap, kEmptyKey);
        vals_.clear();
        vals_.resize(newCap);
        const std::size_t mask = newCap - 1;
        for (std::size_t i = 0; i < oldKeys.size(); i++) {
            if (oldKeys[i] == kEmptyKey)
                continue;
            std::size_t idx = slotOf(oldKeys[i], mask);
            while (keys_[idx] != kEmptyKey)
                idx = (idx + 1) & mask;
            keys_[idx] = oldKeys[i];
            vals_[idx] = std::move(oldVals[i]);
        }
    }

    std::vector<std::uint64_t> keys_;
    std::vector<V> vals_;
    std::size_t size_ = 0;
};

} // namespace dax::sim
