/**
 * @file
 * Structured span tracing stamped with virtual time.
 *
 * The recorder keeps one bounded ring of typed events per (process,
 * track): Begin/End spans (nesting: a `fault` span contains its
 * `pt_walk`, `frame_alloc`, `zero`, `journal_commit` and shootdown
 * children), Instant events (the old DAX_TRACE text lines, recorded
 * structurally), and periodic Counter samples pulled from the attached
 * sim::MetricsRegistry. Tracks map to simulated hardware threads and
 * daemons; each sys::System registers as one process so traces from
 * sequential Systems (whose engine clocks restart at zero) stay
 * monotone per track.
 *
 * Two exporters: Chrome `trace_event` JSON (loadable in Perfetto) and
 * Brendan-Gregg folded stacks (flamegraphs). analyzeChromeTrace() is
 * the shared reader used by tools/trace_report and the tests; its
 * totals reconcile with the metrics registry (see docs/tracing.md).
 *
 * Everything here is disabled by default and costs one predictable
 * branch per call site when off. Recording never advances virtual
 * time, so traced runs are bit-identical to untraced ones.
 *
 * Thread safety: the recorder is shared process-wide (Trace::get()),
 * and under the parallel engine (docs/engine.md) shards record from
 * several host threads at once. All mutation and export paths take
 * one internal mutex; the enabled() mask checks stay lock-free, so
 * tracing-off runs are untouched. Tracks map to engine thread ids,
 * which the shard assignment never splits across domains, so per-
 * track event order (and thus export order) stays deterministic.
 */
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/time.h"

namespace dax::sim {

class Json;
class MetricsRegistry;

/** Trace categories, shared by the text renderer and the span recorder. */
enum class TraceCat : unsigned
{
    Fault = 0,
    Mmap,
    Shootdown,
    Fs,
    Daxvm,
    Prezero,
    Latr,
    Lock,
    Openloop,
    Sched,
    kCount,
};

const char *traceCatName(TraceCat cat);

enum class SpanPhase : std::uint8_t
{
    Begin,
    End,
    Instant,
    Counter,
    FlowStart, ///< Chrome "s": causal arrow leaves this track
    FlowStep,  ///< Chrome "t": arrow passes through
    FlowEnd,   ///< Chrome "f" (bp:e): arrow lands on this track
};

struct SpanEvent
{
    SpanPhase phase;
    TraceCat cat;
    std::uint32_t pid;   ///< process id (one per sys::System)
    std::uint32_t track; ///< engine thread id, or scratch-Cpu track
    std::int32_t core;
    Time ts;
    const char *name;    ///< static string literal
    std::uint64_t value; ///< Counter payload, or flow id (Flow* phases)
    std::string detail;  ///< optional formatted args ("" = none)
};

/**
 * One preserved request span tree: the slowest requests per (process,
 * group) survive ring overflow because their events are copied out of
 * the ring at request completion, before any later wrap can evict
 * them. `truncated` marks a capture whose leading events had already
 * been overwritten when the request finished (ring smaller than one
 * request's footprint).
 */
struct SpanExemplar
{
    std::uint32_t pid = 0;
    std::string group; ///< reservoir key, e.g. the tenant name
    std::uint64_t seq = 0;
    Time arrivalNs = 0;
    Time startNs = 0;
    Time doneNs = 0;
    std::uint64_t latencyNs = 0; ///< doneNs - arrivalNs
    std::uint32_t track = 0;
    bool truncated = false;
    std::vector<SpanEvent> events;
};

/** Tracks for engineless scratch Cpus start here (see spanTrackOf). */
constexpr std::uint32_t kScratchTrackBase = 1u << 16;

class SpanRecorder
{
  public:
    SpanRecorder();

    bool
    enabled(TraceCat cat) const
    {
        return (mask_ & (1u << static_cast<unsigned>(cat))) != 0;
    }
    bool anyEnabled() const { return mask_ != 0; }
    void enable(TraceCat cat) { mask_ |= 1u << static_cast<unsigned>(cat); }
    void
    disable(TraceCat cat)
    {
        mask_ &= ~(1u << static_cast<unsigned>(cat));
    }
    void enableAll() { mask_ = (1u << unsigned(TraceCat::kCount)) - 1; }
    void disableAll() { mask_ = 0; }

    /** Per-track ring capacity in events (oldest dropped on overflow). */
    void setCapacity(std::size_t perTrackEvents);
    std::size_t capacity() const { return capacity_; }

    /** Virtual-time period between counter samples (0 disables). */
    void setSamplePeriod(Time period) { samplePeriod_ = period; }

    /**
     * Register a new trace process (one per sys::System); subsequent
     * events carry its pid. @p counters, when non-null, becomes the
     * source for periodic counter samples. @return the pid.
     */
    std::uint32_t attachProcess(MetricsRegistry *counters,
                                const char *label);
    /** Drop the counter source if it is @p counters (System teardown). */
    void detachProcess(MetricsRegistry *counters);

    void begin(TraceCat cat, std::uint32_t track, int core, Time ts,
               const char *name, std::string detail = {});
    void end(TraceCat cat, std::uint32_t track, int core, Time ts,
             const char *name);
    /** Retrospective span, e.g. a lock wait known only on acquisition. */
    void span(TraceCat cat, std::uint32_t track, int core, Time beginTs,
              Time endTs, const char *name, std::string detail = {});
    void instant(TraceCat cat, std::uint32_t track, int core, Time ts,
                 const char *name, std::string detail = {});
    void counterSample(std::uint32_t track, Time ts,
                       const std::string &name, std::uint64_t value);

    /**
     * Start a causal flow (Chrome `s`) on @p track and return its id.
     * Ids are allocated from a per-track counter, so they are a pure
     * function of the simulation: `(pid << 48) | (track << 24) | seq`.
     * No global atomics — per-track push order is deterministic under
     * the parallel engine, hence so are the ids (docs/tracing.md).
     * Flow timestamps are clamped up to the track's last recorded
     * event so arrows never make a track non-monotone.
     */
    std::uint64_t flowStart(TraceCat cat, std::uint32_t track, int core,
                            Time ts, const char *name);
    /** Continue a flow (Chrome `t`) on @p track. */
    void flowStep(TraceCat cat, std::uint32_t track, int core, Time ts,
                  const char *name, std::uint64_t id);
    /** Terminate a flow (Chrome `f`, binding point `e`) on @p track. */
    void flowEnd(TraceCat cat, std::uint32_t track, int core, Time ts,
                 const char *name, std::uint64_t id);

    /**
     * Snapshot of how many events (currentPid_, @p track) has pushed,
     * taken at request start; recordRequestExemplar() later copies
     * everything pushed since the mark.
     */
    struct CaptureMark
    {
        std::uint64_t pushed = 0;
    };
    CaptureMark captureMark(std::uint32_t track) const;

    /**
     * Offer a finished request to the per-(process, @p group) top-K
     * exemplar reservoir (K = @p topK, ordered by latency descending,
     * then seq ascending). Only an admitted request pays the event
     * copy; rejected offers are a comparison under the lock.
     */
    void recordRequestExemplar(const std::string &group,
                               std::uint64_t seq, Time arrivalNs,
                               Time startNs, Time doneNs,
                               std::uint32_t track, CaptureMark mark,
                               std::size_t topK);
    /** All reservoirs flattened, ordered by (pid, group, rank). */
    std::vector<SpanExemplar> exemplars() const;

    /** Drop all recorded events and process state; keep the mask. */
    void clear();

    std::uint64_t eventCount() const;
    std::uint64_t droppedCount() const;

    void writeChromeTrace(std::FILE *out) const;
    std::string chromeTraceString() const;
    void writeFoldedStacks(std::FILE *out) const;
    std::string foldedStacksString() const;

  private:
    struct Track
    {
        std::vector<SpanEvent> events; ///< ring once at capacity
        std::size_t next = 0;          ///< ring cursor
        std::uint64_t dropped = 0;
        std::uint64_t flowNext = 0; ///< per-track flow id counter
        Time lastTs = 0;            ///< newest push (flow ts clamp)
    };

    /**
     * Write one event into the track's ring in place. Recycled slots
     * keep their detail string's buffer (assigned into, not replaced),
     * so a saturated ring records without heap traffic.
     */
    void push(SpanPhase phase, TraceCat cat, std::uint32_t track,
              int core, Time ts, const char *name, std::uint64_t value,
              const std::string &detail);
    /** Next ring slot of (currentPid_, @p track), growing to capacity. */
    SpanEvent &nextSlot(std::uint32_t track);
    void maybeSampleCounters(std::uint32_t track, Time ts);
    /** droppedCount() body; caller holds mu_. */
    std::uint64_t droppedCountLocked() const;
    /** Events of @p t in recording order (unrolls the ring). */
    std::vector<const SpanEvent *> ordered(const Track &t) const;
    /**
     * Recording order with ring damage repaired: orphan leading Ends
     * dropped, unclosed Begins closed at the track's last timestamp.
     * Balanced by construction, so exporters never emit an unmatched
     * phase even after wrap-around.
     */
    std::vector<SpanEvent> balanced(const Track &t) const;
    /** Render into @p buf, flushing to @p file (when non-null). */
    void renderChrome(std::string &buf, std::FILE *file) const;
    void renderFolded(std::string &buf, std::FILE *file) const;

    /** Category mask: set up single-threaded, read lock-free. */
    unsigned mask_ = 0;
    /** Guards every member below (parallel-engine shard recording). */
    mutable std::mutex mu_;
    std::size_t capacity_;
    Time samplePeriod_;
    Time nextSampleAt_ = 0;
    std::uint32_t currentPid_ = 1;
    std::uint32_t nextPid_ = 2;
    std::map<std::uint32_t, std::string> processLabels_;
    std::map<std::uint64_t, Track> tracks_; ///< key: pid << 32 | track
    /** key: pid, group — each holds a latency-ordered top-K. */
    std::map<std::pair<std::uint32_t, std::string>,
             std::vector<SpanExemplar>>
        exemplars_;
    MetricsRegistry *counterSource_ = nullptr;
};

/** Aggregate statistics for one span name. */
struct SpanStat
{
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0;
    std::uint64_t selfNs = 0; ///< total minus enclosed child spans
};

/** What analyzeChromeTrace() distills from a trace file. */
struct TraceReport
{
    std::uint64_t events = 0;
    std::uint64_t dropped = 0; ///< recorder-reported ring overflows
    std::uint64_t flowEvents = 0; ///< s/t/f causal-arrow phases
    std::map<std::string, SpanStat> spans;
    /** Spans closed while a `fault` span was open, keyed by name. */
    std::map<std::string, SpanStat> faultChildren;
    std::uint64_t faultCount = 0;
    std::uint64_t faultTotalNs = 0;
    std::map<std::string, std::uint64_t> lockWaits;
    std::map<std::string, std::uint64_t> lockWaitNs;
    /** Schema violations: unmatched E, unclosed B, malformed pid/tid. */
    std::vector<std::string> problems;
    /** Timestamp regressions per track (informational, see docs). */
    std::uint64_t nonMonotone = 0;
};

TraceReport analyzeChromeTrace(const Json &doc);
std::string formatTraceReport(const TraceReport &report,
                              std::size_t topN = 20);

} // namespace dax::sim
