/**
 * @file
 * Lightweight named-counter registry used by subsystems to expose
 * event counts (faults, shootdowns, journal commits, ...) to tests and
 * benches without coupling them to each subsystem's internals.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace dax::sim {

class StatSet
{
  public:
    /** Increment counter @p key by @p delta. */
    void
    inc(const std::string &key, std::uint64_t delta = 1)
    {
        counters_[key] += delta;
    }

    /** Current value (0 when never incremented). */
    std::uint64_t
    get(const std::string &key) const
    {
        auto it = counters_.find(key);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Reset all counters. */
    void clear() { counters_.clear(); }

    /** Accumulate all counters of @p other into this set. */
    void merge(const StatSet &other);

    /** Render as "key=value" lines sorted by key. */
    std::string toString() const;

    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters_;
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace dax::sim
