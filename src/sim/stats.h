/**
 * @file
 * Legacy string-keyed counter facade over the typed metrics registry
 * (sim/metrics.h).
 *
 * StatSet used to be a standalone map<string, uint64>; it is now a
 * thin view that interns every key as a registry Counter, so the
 * counter names tests and tools have always used ("vm.faults",
 * "tlb.ipis", ...) resolve in the unified registry and appear in
 * System metric snapshots. Hot paths should prefer typed handles
 * (sim::Counter) interned once at construction; inc()/get() here cache
 * handles per key, costing one map lookup per call - fine for cold
 * paths and tests.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "sim/metrics.h"

namespace dax::sim {

class StatSet
{
  public:
    /** Standalone set backed by a private registry (tests, tools). */
    StatSet();

    /** View over a shared registry (subsystems inside a System). */
    explicit StatSet(MetricsRegistry &registry);

    StatSet(const StatSet &) = delete;
    StatSet &operator=(const StatSet &) = delete;

    /** Increment counter @p key by @p delta. */
    void inc(const std::string &key, std::uint64_t delta = 1);

    /** Current value (0 when never incremented). */
    std::uint64_t get(const std::string &key) const;

    /** Reset every value in the underlying registry. */
    void clear();

    /** Accumulate all counters of @p other into this set. */
    void merge(const StatSet &other);

    /** Render all counters as "key=value" lines sorted by key. */
    std::string toString() const;

    /** All counters of the underlying registry, by name. */
    std::map<std::string, std::uint64_t> all() const;

    MetricsRegistry &registry() { return *registry_; }
    const MetricsRegistry &registry() const { return *registry_; }

  private:
    std::unique_ptr<MetricsRegistry> owned_;
    MetricsRegistry *registry_;
    /** Interned handle cache so repeated inc() skips registration. */
    mutable std::map<std::string, Counter> handles_;
};

} // namespace dax::sim
