/**
 * @file
 * Deterministic virtual-time execution engine.
 *
 * The engine owns a set of simulated hardware threads, each pinned to a
 * core and carrying its own nanosecond clock. It repeatedly steps the
 * runnable thread with the smallest clock; a step executes one workload
 * *quantum* (e.g. one request) which advances the clock through the
 * cost model. Stepping in global time order makes updates to shared
 * queueing state (lock free-times, device busy-times, TLB contents)
 * causally consistent, so contention emerges from the model and runs
 * are bit-reproducible.
 *
 * Daemons (e.g. the DaxVM pre-zero thread) are threads that park when
 * idle and are woken by producers; they do not hold up termination.
 *
 * Parallel execution (docs/engine.md): threads are grouped into
 * *isolation domains* (addThread/addDaemon `domain` argument; default
 * kSharedDomain). Threads in the same domain may share any simulated
 * state and are always scheduled on one shard in exact min-clock
 * order. Threads in different domains promise to share no mutable
 * simulated state except engine-mediated wake()s, which are charged
 * the cross-shard lookahead latency. Under setParallelism(N>1) the
 * engine maps domains onto N shards, advances each shard independently
 * up to an epoch horizon (global min clock + lookahead) on its own
 * host thread, synchronizes at an epoch barrier, and exchanges
 * cross-domain wakes through deterministic per-shard inboxes drained
 * in (time, source shard, sequence) order. Output is bit-identical to
 * the sequential engine for any shard count.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/check_hook.h"
#include "sim/time.h"

namespace dax::sim {

class Engine;

/**
 * Execution context of one simulated hardware thread. All cost charging
 * flows through Cpu::advance(); blocking primitives advance the clock
 * to the acquisition time.
 */
class Cpu
{
  public:
    Cpu(Engine *engine, int threadId, int coreId)
        : engine_(engine), threadId_(threadId), coreId_(coreId)
    {}

    Time now() const { return now_; }
    int threadId() const { return threadId_; }
    int coreId() const { return coreId_; }
    Engine *engine() const { return engine_; }

    /** Charge @p ns of work. */
    void advance(Time ns) { now_ += ns; }

    /** Block until virtual time @p t (no-op if already past). */
    void
    advanceTo(Time t)
    {
        if (t > now_)
            now_ = t;
    }

    /**
     * Safe horizon for pruning queueing state: the minimum virtual
     * time any future request can carry (see Engine::safeHorizon).
     * Under parallel execution this is the owning shard's horizon;
     * shards only prune state their own domain touches, so a shard-
     * local bound is sufficient. Engineless scratch Cpus
     * (single-threaded tests) use their own clock.
     */
    Time pruneHorizon() const;

  private:
    friend class Engine;

    Engine *engine_;
    int threadId_;
    int coreId_;
    Time now_ = 0;
};

/**
 * A simulated thread body. step() runs one quantum and returns false
 * when the thread has finished its program. For daemons, returning
 * false parks the thread instead; the engine re-steps it after the
 * next wake().
 */
class Task
{
  public:
    virtual ~Task() = default;

    /** Execute one quantum. @return false when the program is done. */
    virtual bool step(Cpu &cpu) = 0;

    /** Short label used in engine traces and stats. */
    virtual std::string name() const { return "task"; }
};

/** Adapter turning a callable into a Task. */
class FnTask : public Task
{
  public:
    using Fn = std::function<bool(Cpu &)>;

    explicit FnTask(Fn fn, std::string name = "fn")
        : fn_(std::move(fn)), name_(std::move(name))
    {}

    bool step(Cpu &cpu) override { return fn_(cpu); }
    std::string name() const override { return name_; }

  private:
    Fn fn_;
    std::string name_;
};

class Engine
{
  public:
    /** Domain of threads that may share any simulated state. */
    static constexpr int kSharedDomain = 0;

    /**
     * Default cross-shard lookahead: the IPI base cost, the cheapest
     * cross-core interaction in the cost model. sys::System installs
     * CostModel::crossShardLookahead() instead.
     */
    static constexpr Time kDefaultLookahead = 1600;

    /** @param nCores cores available; threads are pinned round robin. */
    explicit Engine(unsigned nCores);
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    unsigned numCores() const { return nCores_; }

    /**
     * Add a worker thread running @p task, pinned to @p core (or round
     * robin when negative), starting its clock at @p startAt (for
     * sequential measurement phases on one engine). @p domain selects
     * the isolation domain (see file comment); the default shares
     * state with everything.
     * @return the thread id.
     */
    int addThread(std::unique_ptr<Task> task, int core = -1,
                  Time startAt = 0, int domain = kSharedDomain);

    /** Add a parked daemon thread (woken via wake()). */
    int addDaemon(std::unique_ptr<Task> task, int core = -1,
                  int domain = kSharedDomain);

    /**
     * Wake a parked daemon, not before @p notBefore. From within a
     * quantum of a *different* domain this is a cross-shard event: it
     * is additionally charged the lookahead latency (the wake lands no
     * earlier than the calling quantum's start + lookahead) and is
     * delivered through the target shard's deterministic inbox. Same-
     * domain wakes keep the classic immediate semantics.
     */
    void wake(int threadId, Time notBefore);

    /** Park the calling daemon (valid only from within its step()). */
    void park(int threadId);

    /**
     * Run until every non-daemon thread finished.
     * @return makespan: the maximum clock among non-daemon threads.
     */
    Time run();

    /**
     * Host-parallel execution: shard domains across @p simThreads host
     * threads, each advancing conservatively by @p lookaheadNs per
     * epoch (clamped to >= 1 ns). 1 = the classic sequential loop
     * (the reference implementation). Not callable from inside run().
     */
    void setParallelism(unsigned simThreads,
                        Time lookaheadNs = kDefaultLookahead);

    /** Configured host threads for run() (see setParallelism). */
    unsigned simThreads() const { return simThreads_; }

    /** Cross-shard lookahead in virtual ns (see setParallelism). */
    Time lookaheadNs() const { return lookahead_; }

    /** Shard a domain maps to under the current parallelism. */
    unsigned
    shardOf(int domain) const
    {
        return static_cast<unsigned>(domain) % simThreads_;
    }

    /** Clock of a thread (valid after run() too). */
    Time threadClock(int threadId) const;

    /** Number of threads added so far (workers and daemons). */
    std::size_t threadCount() const { return threads_.size(); }

    /**
     * Maximum clock over all threads. Unlike safeHorizon() this is an
     * upper bound on elapsed virtual time: threads ahead of the min
     * clock (e.g. ones that just blocked on a lock) count.
     */
    Time maxThreadClock() const;

    /**
     * Install an invariant-check observer fired after every quantum
     * (nullptr disables). Owned by the caller; used by check::Oracle.
     * Under parallel execution the hook fires on the stepping shard's
     * host thread; a System (one shared domain = one shard) observes
     * the exact sequential order.
     */
    void setCheckHook(CheckHook *hook) { checkHook_ = hook; }

    /** Total quanta stepped (debug/health metric). */
    std::uint64_t steps() const;

    /** Number of run() invocations so far (checker re-baselining). */
    std::uint64_t runEpoch() const { return runEpoch_; }

    /**
     * True while inside run(): all lock/resource activity is engine-
     * driven, so conservation budgets apply. Outside run(), engineless
     * scratch Cpus restart clocks per phase and are exempt.
     */
    bool running() const { return running_; }

    /**
     * Clock of the currently stepping thread at its quantum start: no
     * future request can be issued at an earlier virtual time, so
     * queueing state older than this is safely prunable. Under
     * parallel execution this is the cross-run aggregate (max over
     * shard horizons at run() exit); in-run pruning goes through
     * Cpu::pruneHorizon(), which is shard-local.
     */
    Time safeHorizon() const { return safeHorizon_; }

  private:
    /** Never: sentinel for "no runnable clock / no pending event". */
    static constexpr Time kNever = std::numeric_limits<Time>::max();

    /**
     * One cross-domain wake in flight. Inboxes are drained in
     * ascending (at, srcShard, seq) order -- an explicit total order
     * so delivery never depends on host-thread completion order. All
     * current event kinds commute at equal times (advanceTo is a max,
     * unpark is idempotent); the sort keys keep the order pinned down
     * for future event kinds anyway.
     */
    struct PendingWake
    {
        Time at;               ///< earliest virtual delivery time
        std::uint32_t srcShard;///< sending shard (tie-break key)
        std::uint64_t seq;     ///< sending shard's sequence number
        int threadId;          ///< parked daemon to wake
        /** Trace flow id carried to delivery (0 = tracing off). */
        std::uint64_t flowId = 0;
    };

    /** Padded per-thread record: shards touch disjoint cache lines. */
    struct alignas(64) ThreadState
    {
        std::unique_ptr<Task> task;
        Cpu cpu;
        bool daemon = false;
        bool parked = false;
        bool done = false;
        int domain = kSharedDomain;
        unsigned shard = 0; ///< assigned at run() start
    };

    /** Per-shard scheduler state; one executor host thread at a time. */
    struct alignas(64) ShardState
    {
        /** Member thread ids, ascending (= sequential tie-break). */
        std::vector<int> members;
        /** Matured cross-domain wakes, sorted (at, srcShard, seq). */
        std::vector<PendingWake> pending;
        /** Cross-shard deposits; drained at the epoch barrier. */
        std::vector<PendingWake> inbox;
        std::mutex inboxMu;
        /** Quantum-start clock of this shard's stepping thread. */
        Time safeHorizon = 0;
        /** Quanta stepped since the last barrier merge. */
        std::atomic<std::uint64_t> stepsDelta{0};
        std::uint64_t wakeSeq = 0; ///< outgoing event numbering
        bool steppedThisRun = false;
        /**
         * Worker-exhaustion cut, mirroring the classic loop's exit:
         * when a shard's last live worker member completes, the shard
         * stops stepping (daemons included) for the rest of the run.
         * With one shard this is exactly the sequential exit rule;
         * with many, retired() shards are skipped by the barrier so a
         * never-again-steppable daemon cannot pin the global horizon.
         * Daemon-only shards (hadWorkers false) never retire; they run
         * while workers are pending anywhere.
         */
        bool hadWorkers = false;
        unsigned liveWorkers = 0;

        bool retired() const { return hadWorkers && liveWorkers == 0; }
        std::exception_ptr error;
        Time errorAt = 0;
    };

    /** The one total order every wake queue is kept in. */
    static bool
    wakeLess(const PendingWake &a, const PendingWake &b)
    {
        if (a.at != b.at)
            return a.at < b.at;
        if (a.srcShard != b.srcShard)
            return a.srcShard < b.srcShard;
        return a.seq < b.seq;
    }

    int addInternal(std::unique_ptr<Task> task, int core, bool daemon,
                    int domain);
    Time pruneHorizonFor(const Cpu &cpu) const;
    void assignShards();
    void postWake(ThreadState &t, Time at, unsigned srcShard,
                  std::uint64_t flowId);
    void applyWake(const PendingWake &w);
    void runSequentialLoop();
    void runParallelLoop();
    /** Advance one shard's threads up to @p horizon (one epoch). */
    void runShardEpoch(unsigned shardIdx, Time horizon);
    void drainLeftoverWakes();
    void ensurePool();
    void shutdownPool();
    void workerLoop(unsigned shardIdx);

    friend class Cpu;

    unsigned nCores_;
    unsigned nextCore_ = 0;
    std::vector<std::unique_ptr<ThreadState>> threads_;
    std::vector<std::unique_ptr<ShardState>> shards_;
    std::uint64_t steps_ = 0;
    std::uint64_t runEpoch_ = 0;
    bool running_ = false;
    Time safeHorizon_ = 0;
    CheckHook *checkHook_ = nullptr;

    unsigned simThreads_ = 1;
    Time lookahead_ = kDefaultLookahead;

    // Host worker pool (lazily spawned; shard i > 0 -> worker i - 1).
    std::vector<std::thread> workers_;
    std::mutex poolMu_;
    std::condition_variable poolCv_;
    std::condition_variable doneCv_;
    std::uint64_t epochGen_ = 0;
    unsigned pendingShards_ = 0;
    Time epochHorizon_ = 0;
    std::vector<char> shardActive_;
    bool shutdown_ = false;
};

} // namespace dax::sim
