/**
 * @file
 * Deterministic virtual-time execution engine.
 *
 * The engine owns a set of simulated hardware threads, each pinned to a
 * core and carrying its own nanosecond clock. It repeatedly steps the
 * runnable thread with the smallest clock; a step executes one workload
 * *quantum* (e.g. one request) which advances the clock through the
 * cost model. Stepping in global time order makes updates to shared
 * queueing state (lock free-times, device busy-times, TLB contents)
 * causally consistent, so contention emerges from the model and runs
 * are bit-reproducible.
 *
 * Daemons (e.g. the DaxVM pre-zero thread) are threads that park when
 * idle and are woken by producers; they do not hold up termination.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "sim/check_hook.h"
#include "sim/time.h"

namespace dax::sim {

class Engine;

/**
 * Execution context of one simulated hardware thread. All cost charging
 * flows through Cpu::advance(); blocking primitives advance the clock
 * to the acquisition time.
 */
class Cpu
{
  public:
    Cpu(Engine *engine, int threadId, int coreId)
        : engine_(engine), threadId_(threadId), coreId_(coreId)
    {}

    Time now() const { return now_; }
    int threadId() const { return threadId_; }
    int coreId() const { return coreId_; }
    Engine *engine() const { return engine_; }

    /** Charge @p ns of work. */
    void advance(Time ns) { now_ += ns; }

    /** Block until virtual time @p t (no-op if already past). */
    void
    advanceTo(Time t)
    {
        if (t > now_)
            now_ = t;
    }

    /**
     * Safe horizon for pruning queueing state: the minimum virtual
     * time any future request can carry (see Engine::safeHorizon).
     * Engineless scratch Cpus (single-threaded tests) use their own
     * clock.
     */
    Time pruneHorizon() const;

  private:
    friend class Engine;

    Engine *engine_;
    int threadId_;
    int coreId_;
    Time now_ = 0;
};

/**
 * A simulated thread body. step() runs one quantum and returns false
 * when the thread has finished its program. For daemons, returning
 * false parks the thread instead; the engine re-steps it after the
 * next wake().
 */
class Task
{
  public:
    virtual ~Task() = default;

    /** Execute one quantum. @return false when the program is done. */
    virtual bool step(Cpu &cpu) = 0;

    /** Short label used in engine traces and stats. */
    virtual std::string name() const { return "task"; }
};

/** Adapter turning a callable into a Task. */
class FnTask : public Task
{
  public:
    using Fn = std::function<bool(Cpu &)>;

    explicit FnTask(Fn fn, std::string name = "fn")
        : fn_(std::move(fn)), name_(std::move(name))
    {}

    bool step(Cpu &cpu) override { return fn_(cpu); }
    std::string name() const override { return name_; }

  private:
    Fn fn_;
    std::string name_;
};

class Engine
{
  public:
    /** @param nCores cores available; threads are pinned round robin. */
    explicit Engine(unsigned nCores);
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    unsigned numCores() const { return nCores_; }

    /**
     * Add a worker thread running @p task, pinned to @p core (or round
     * robin when negative), starting its clock at @p startAt (for
     * sequential measurement phases on one engine).
     * @return the thread id.
     */
    int addThread(std::unique_ptr<Task> task, int core = -1,
                  Time startAt = 0);

    /** Add a parked daemon thread (woken via wake()). */
    int addDaemon(std::unique_ptr<Task> task, int core = -1);

    /** Wake a parked daemon, not before @p notBefore. */
    void wake(int threadId, Time notBefore);

    /** Park the calling daemon (valid only from within its step()). */
    void park(int threadId);

    /**
     * Run until every non-daemon thread finished.
     * @return makespan: the maximum clock among non-daemon threads.
     */
    Time run();

    /** Clock of a thread (valid after run() too). */
    Time threadClock(int threadId) const;

    /** Number of threads added so far (workers and daemons). */
    std::size_t threadCount() const { return threads_.size(); }

    /**
     * Maximum clock over all threads. Unlike safeHorizon() this is an
     * upper bound on elapsed virtual time: threads ahead of the min
     * clock (e.g. ones that just blocked on a lock) count.
     */
    Time maxThreadClock() const;

    /**
     * Install an invariant-check observer fired after every quantum
     * (nullptr disables). Owned by the caller; used by check::Oracle.
     */
    void setCheckHook(CheckHook *hook) { checkHook_ = hook; }

    /** Total quanta stepped (debug/health metric). */
    std::uint64_t steps() const { return steps_; }

    /** Number of run() invocations so far (checker re-baselining). */
    std::uint64_t runEpoch() const { return runEpoch_; }

    /**
     * True while inside run(): all lock/resource activity is engine-
     * driven, so conservation budgets apply. Outside run(), engineless
     * scratch Cpus restart clocks per phase and are exempt.
     */
    bool running() const { return running_; }

    /**
     * Clock of the currently stepping thread at its quantum start: no
     * future request can be issued at an earlier virtual time, so
     * queueing state older than this is safely prunable.
     */
    Time safeHorizon() const { return safeHorizon_; }

  private:
    struct ThreadState
    {
        std::unique_ptr<Task> task;
        Cpu cpu;
        bool daemon = false;
        bool parked = false;
        bool done = false;
    };

    int addInternal(std::unique_ptr<Task> task, int core, bool daemon);

    unsigned nCores_;
    unsigned nextCore_ = 0;
    std::vector<std::unique_ptr<ThreadState>> threads_;
    std::uint64_t steps_ = 0;
    std::uint64_t runEpoch_ = 0;
    bool running_ = false;
    Time safeHorizon_ = 0;
    CheckHook *checkHook_ = nullptr;
};

} // namespace dax::sim
