/**
 * @file
 * Cost model validation helpers.
 */
#include "sim/cost_model.h"

#include <string>
#include <vector>

namespace dax::sim {

/**
 * Check internal consistency of a cost model; returns human-readable
 * problems (empty when the model is usable). Experiments call this
 * after applying overrides so typos fail fast instead of producing
 * nonsense curves.
 */
std::vector<std::string>
validateCostModel(const CostModel &cm)
{
    std::vector<std::string> problems;
    auto require = [&](bool ok, const char *msg) {
        if (!ok)
            problems.emplace_back(msg);
    };

    require(cm.pmemLoadLat >= cm.dramLoadLat,
            "PMem load latency must be >= DRAM load latency");
    require(cm.pmemNtStoreBwCore > cm.pmemClwbBwCore,
            "ntstore bandwidth must exceed store+clwb bandwidth");
    require(cm.pmemDeviceReadBw > cm.pmemDeviceWriteBw,
            "Optane read bandwidth must exceed write bandwidth");
    require(cm.kernelCopyFactor > 0.0 && cm.kernelCopyFactor <= 1.0,
            "kernelCopyFactor must be in (0, 1]");
    require(cm.walkLeafPmem > cm.walkLeafDram,
            "PMem-resident page tables must walk slower than DRAM");
    require(cm.tlbFlushThreshold > 0, "TLB flush threshold must be > 0");
    require(cm.ptesPerCacheLine == 8,
            "x86-64 has exactly 8 PTEs per 64 B cache line");
    require(cm.asyncUnmapBatchPages > 0,
            "async unmap batch must be > 0 pages");
    return problems;
}

} // namespace dax::sim
