/**
 * @file
 * Power-failure fault injection.
 *
 * The simulation's persistence model (mem::Device volatile cache-line
 * overlay, fs::Journal durable metadata image, DaxVM persistent file
 * tables) only becomes testable when crashes can actually happen. A
 * FaultPlan is installed on a System and observes every
 * *persistence-boundary event* - a point in virtual time at which some
 * state is about to become durable:
 *
 *   DurableStore    ntstore/clwb'ed data about to reach the medium
 *   Flush           clwb of a dirty cache-line range (msync/fsync)
 *   Drain           an explicit sfence/drain of all dirty lines
 *   JournalCommit   an ext4 jbd2 transaction about to commit
 *   NovaCommit      a NOVA per-inode log append about to commit
 *   TableUpdate     a persistent DaxVM file table mid-update
 *   PrezeroRelease  a zeroed extent about to enter the zeroed pool
 *
 * Events fire *before* the durable mutation is applied, so a crash at
 * event k means exactly: everything made durable by events < k
 * survives, the mutation of event k (and all volatile state) is lost.
 * That convention is what lets the crash-sweep harness enumerate every
 * reachable post-crash state of a run.
 *
 * The plan fires by throwing CrashException; the driving harness
 * catches it, calls sys::System::crash() + recover() and verifies
 * invariants. Plans are deterministic: a counting pass measures the
 * number of boundary events of a seeded run, after which the harness
 * sweeps indices (or draws one with sim::Rng) and replays.
 */
#pragma once

#include <cstdint>
#include <exception>
#include <optional>
#include <string>

#include "sim/time.h"

namespace dax::sim {

enum class FaultEvent
{
    DurableStore,
    Flush,
    Drain,
    JournalCommit,
    NovaCommit,
    TableUpdate,
    PrezeroRelease,
    /** One inode about to be restored during crash recovery (journal
     *  replay / NOVA log scan) - crashing here is a double fault. */
    RecoveryReplay,
    kCount_,
};

/** Human-readable event name (tracing, sweep reports). */
const char *faultEventName(FaultEvent ev);

/** Thrown by FaultPlan when the planned crash point is reached. */
class CrashException : public std::exception
{
  public:
    CrashException(FaultEvent event, std::uint64_t index, Time at)
        : event_(event), index_(index), at_(at)
    {}

    const char *what() const noexcept override
    {
        return "simulated power failure";
    }

    FaultEvent event() const { return event_; }
    /** Global boundary-event index the crash fired at. */
    std::uint64_t index() const { return index_; }
    /** Virtual time of the crash. */
    Time at() const { return at_; }

  private:
    FaultEvent event_;
    std::uint64_t index_;
    Time at_;
};

/**
 * Media degradation model: which cache lines of the PMem device go
 * bad, deterministically derived from a seed so chaos runs replay.
 * All decisions are pure functions of (seed, line index, per-line
 * durable-write count) - no host randomness is involved.
 */
struct MediaSpec
{
    std::uint64_t seed = 1;
    /**
     * Background uncorrectable-error probability per cache line
     * (0 disables). A line is born bad when a seeded hash of its index
     * falls below this rate; repair heals it permanently.
     */
    double backgroundRate = 0.0;
    /**
     * Weibull wear-out (0 disables): each line draws a durable-write
     * budget from Weibull(shape, scale) via the inverse CDF of a
     * seeded uniform; once its write count exceeds the budget the line
     * is poisoned. Hot lines die first, matching DCPMM wear behavior.
     */
    double wearScale = 0.0;
    double wearShape = 2.0;
    /**
     * Poison the line a durable store was tearing when the crash plan
     * fired mid-store (interrupted ntstore leaves an invalid ECC word).
     */
    bool poisonTornStore = false;
    /**
     * Physical range media faults apply to, [base, limit). The System
     * clamps this to the file-data region so page/file tables (whose
     * failure model is TableUpdate) are never silently poisoned.
     */
    std::uint64_t base = 0;
    std::uint64_t limit = ~0ULL;
};

class FaultPlan
{
  public:
    /** Counting-only plan: observes events, never crashes. */
    FaultPlan() = default;

    /** Crash when the @p index'th boundary event (0-based) fires. */
    static FaultPlan
    atIndex(std::uint64_t index)
    {
        FaultPlan p;
        p.targetIndex_ = index;
        return p;
    }

    /** Crash at the @p n'th event of @p kind (0-based). */
    static FaultPlan
    atKind(FaultEvent kind, std::uint64_t n)
    {
        FaultPlan p;
        p.targetKind_ = kind;
        p.targetKindIndex_ = n;
        return p;
    }

    /**
     * Crash at the first boundary event at/after virtual time @p t.
     * Events fired from untimed functional paths carry time 0 and
     * never trigger time plans; index plans are exact everywhere and
     * are what the exhaustive sweep uses.
     */
    static FaultPlan
    atTime(Time t)
    {
        FaultPlan p;
        p.targetTime_ = t;
        return p;
    }

    /**
     * Crash at a pseudo-random event index in [0, totalEvents), drawn
     * deterministically from @p seed (sim::Rng). @p totalEvents comes
     * from a prior counting pass.
     */
    static FaultPlan randomIndex(std::uint64_t seed,
                                 std::uint64_t totalEvents);

    /**
     * Observe one persistence-boundary event; throws CrashException
     * when this is the planned crash point. Instrumented components
     * call this immediately BEFORE applying the durable mutation.
     */
    void onEvent(FaultEvent ev, Time now);

    /** Total boundary events observed so far. */
    std::uint64_t eventsSeen() const { return seen_; }

    /** Events of one kind observed so far. */
    std::uint64_t
    eventsSeen(FaultEvent ev) const
    {
        return perKind_[static_cast<int>(ev)];
    }

    /** True once the plan has crashed (it will not fire again). */
    bool fired() const { return fired_; }

    /** True when this plan can crash (not a counting-only plan). */
    bool
    armed() const
    {
        return targetIndex_ || targetKind_ || targetTime_;
    }

    /** Attach a media degradation model to this plan. */
    void setMedia(const MediaSpec &spec) { media_ = spec; }

    /** Media model, or nullptr when the plan injects none. */
    const MediaSpec *
    media() const
    {
        return media_ ? &*media_ : nullptr;
    }

  private:
    std::uint64_t seen_ = 0;
    std::uint64_t perKind_[static_cast<int>(FaultEvent::kCount_)] = {};
    bool fired_ = false;

    std::optional<std::uint64_t> targetIndex_;
    std::optional<FaultEvent> targetKind_;
    std::uint64_t targetKindIndex_ = 0;
    std::optional<Time> targetTime_;
    std::optional<MediaSpec> media_;
};

/**
 * A parsed --faults / DAXVM_FAULTS specification: the plan itself plus
 * the requested media degradation policy name ("" when unspecified;
 * otherwise "fail-fast", "remap-zero" or "remap-restore").
 */
struct FaultSpec
{
    FaultPlan plan;
    std::string policy;
};

/**
 * Parse a fault specification string (see docs/robustness.md):
 *
 *   spec    := clause (';' clause)*
 *   clause  := 'crash=' crash | 'media=' media (',' media)*
 *   crash   := 'index:' N | 'kind:' NAME ':' N | 'time:' NS
 *            | 'random:' SEED ':' TOTAL
 *   media   := 'seed:' N | 'ue:' RATE | 'wear:' SCALE [':' SHAPE]
 *            | 'torn' | 'policy:' (fail-fast|remap-zero|remap-restore)
 *
 * @throws std::invalid_argument with a message naming the bad token.
 */
FaultSpec parseFaultSpec(const std::string &spec);

} // namespace dax::sim
