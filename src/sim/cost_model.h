/**
 * @file
 * Calibrated latency/bandwidth constants for the simulated platform.
 *
 * The platform modeled is the paper's testbed: a Cascade Lake socket at
 * a fixed 2.7 GHz, 94 GB DRAM and 384 GB (3 DIMM) Intel Optane DCPMM in
 * AppDirect mode. Constants are taken from:
 *
 *  - the paper itself (Table II page-walk cycles; Section III
 *    measurements such as the 30-40% zeroing share of appends),
 *  - Yang et al., "An Empirical Guide to the Behavior and Use of
 *    Scalable Persistent Memory", FAST'20 (Optane latencies, per-thread
 *    and device bandwidths, ntstore vs. clwb behaviour),
 *  - published Linux microbenchmarks for syscall/fault/IPI costs.
 *
 * Every constant is a plain member so experiments can override it; the
 * defaults are what all benches use. CostModel is passed by const
 * reference everywhere - there is exactly one per simulated System.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace dax::sim {

/** Bandwidth in bytes per nanosecond (numerically equal to GB/s). */
using Bw = double;

struct CostModel
{
    // ------------------------------------------------------------------
    // Kernel entry / generic software paths
    // ------------------------------------------------------------------
    /** User->kernel->user crossing for a trivial syscall. */
    Time syscall = 180;
    /** Trap + handler entry/exit of a page fault (before any work). */
    Time faultEntry = 550;
    /** Path lookup + dentry work of open() for a cached path. */
    Time openBase = 900;
    /** close() teardown. */
    Time closeBase = 250;
    /** Extra open() work on a VFS inode-cache miss (load inode). */
    Time coldOpenExtra = 1500;

    // ------------------------------------------------------------------
    // Virtual memory bookkeeping (all charged while mmap_sem is held)
    // ------------------------------------------------------------------
    /** Find free virtual range + allocate & link a VMA (rb-tree). */
    Time vmaAlloc = 420;
    /** Unlink + free a VMA. */
    Time vmaFree = 320;
    /** Split or merge a VMA (partial munmap / mprotect). */
    Time vmaSplit = 380;
    /** Install one 4 KB PTE (demand fault or populate). */
    Time pteSet = 90;
    /** Install one 2 MB PMD entry. */
    Time pmdSet = 110;
    /** Clear one PTE on unmap. */
    Time pteClear = 60;
    /** Allocate/free one page-table page (DRAM). */
    Time ptPageAlloc = 260;
    /** Software dirty-tracking: radix-tree tag + mapping lock. */
    Time dirtyTag = 240;
    /**
     * Contended rwsem acquire/release atomics (cacheline bouncing):
     * charged inside each writer critical section (twice) and once per
     * reader acquisition of mm->mmap_sem.
     */
    Time rwsemWriterAtomics = 400;
    Time rwsemReaderAtomics = 150;
    /** Write-protect one PTE during sync (restart dirty tracking). */
    Time wrProtect = 110;

    // ------------------------------------------------------------------
    // Fault path file-system work
    // ------------------------------------------------------------------
    /** Per-extent-tree-node lookup translating file offset->block. */
    Time extentLookup = 160;
    /** Journal transaction commit (ext4-DAX, jbd2). */
    Time journalCommit = 9000;
    /** NOVA log-entry append + commit (much cheaper, in-place meta). */
    Time novaLogCommit = 700;
    /** Block (de)allocation in the FS allocator, per extent. */
    Time blockAllocOp = 600;

    // ------------------------------------------------------------------
    // TLB and shootdowns
    // ------------------------------------------------------------------
    /** TLB lookup (charged 0; hits are folded into access bandwidth). */
    Time tlbLookup = 0;
    /** Local INVLPG of one page. */
    Time invlpg = 120;
    /** Local full TLB flush (CR3 write). */
    Time fullFlushLocal = 450;
    /** Initiating a shootdown IPI broadcast (fixed cost). */
    Time ipiBase = 1600;
    /** Additional initiator cost per remote core ack'ing. */
    Time ipiPerCore = 350;
    /** Work stolen from each interrupted remote core per IPI. */
    Time ipiRemoteDisruption = 500;
    /**
     * Linux batches per-page invalidations up to this many pages in a
     * single munmap, then prefers a full flush (x86: 33).
     */
    unsigned tlbFlushThreshold = 33;

    // ------------------------------------------------------------------
    // Page walks (calibrated to paper Table II)
    // ------------------------------------------------------------------
    /** Upper levels of the walk (PGD/PUD/PMD) hitting paging caches. */
    Time walkUpperLevels = 8;
    /** Leaf PTE fetch when the PTE cache line misses, tables in DRAM. */
    Time walkLeafDram = 33;
    /** Leaf PTE fetch when the PTE cache line misses, tables in PMem. */
    Time walkLeafPmem = 296;
    /**
     * Probability denominator that a sequential walk hits the cached
     * PTE line: 8 PTEs (64 B line) per line, so 7 of 8 sequential
     * misses hit the line fetched by their neighbour.
     */
    unsigned ptesPerCacheLine = 8;

    // ------------------------------------------------------------------
    // Memory devices
    // ------------------------------------------------------------------
    /** DRAM random 64 B load latency. */
    Time dramLoadLat = 85;
    /** PMem (Optane) random 64 B load latency. */
    Time pmemLoadLat = 305;
    /** Per-core sequential read bandwidth from DRAM (AVX-512). */
    Bw dramReadBwCore = 12.0;
    /** Per-core write bandwidth to DRAM. */
    Bw dramWriteBwCore = 9.0;
    /** Device-level DRAM bandwidth (6 channels). */
    Bw dramDeviceBw = 100.0;
    /** Per-core sequential read bandwidth from PMem (AVX-512). */
    Bw pmemReadBwCore = 6.0;
    /** Per-core ntstore bandwidth to PMem. */
    Bw pmemNtStoreBwCore = 2.2;
    /** Per-core store+clwb bandwidth to PMem (~half of ntstore). */
    Bw pmemClwbBwCore = 1.1;
    /** Device-level PMem read bandwidth (3 DIMMs). */
    Bw pmemDeviceReadBw = 26.0;
    /** Device-level PMem write bandwidth (3 DIMMs). */
    Bw pmemDeviceWriteBw = 6.8;
    /**
     * Kernel copies cannot use AVX-512 (register save/restore at the
     * boundary - paper Section III-C) and use memcpy_mcsafe on PMem;
     * they run at this fraction of the user-space bandwidth.
     */
    double kernelCopyFactor = 0.55;
    /** clwb + sfence of a single dirtied cache line. */
    Time clwbLine = 60;
    /**
     * Machine-check delivery for a poisoned-line load: #MC trap, MCE
     * bank decode and memory_failure() bookkeeping before any repair
     * or signal work (Linux MCE handler, order-of-microseconds).
     */
    Time mceHandle = 5000;

    // ------------------------------------------------------------------
    // DaxVM specifics
    // ------------------------------------------------------------------
    /** Attach/detach one PMD/PUD slot of a file table. */
    Time tableAttach = 120;
    /** Ephemeral-heap bump allocation (atomics, no rb-tree). */
    Time ephemeralAlloc = 90;
    /** Ephemeral VMA list insert/remove under its spinlock. */
    Time ephemeralListOp = 70;
    /** Persist one cache line of file-table PTEs (clwb+fence, batched). */
    Time tablePersistLine = 80;
    /** Default zombie-page batch before a deferred full flush. */
    unsigned asyncUnmapBatchPages = 33;
    /** File sizes below this keep volatile-only file tables. */
    std::uint64_t volatileTableMax = 32 * 1024;
    /** Monitor rule (paper Table III). */
    double monitorWalkCycleThreshold = 200.0;
    double monitorMmuOverheadThreshold = 0.05;
    /** Pre-zero daemon default bandwidth throttle (bytes/ns == GB/s). */
    Bw prezeroThrottle = 1.0;

    // ------------------------------------------------------------------
    // Application-side constants (workload models)
    // ------------------------------------------------------------------
    /** Per-request HTTP parse/respond compute (Apache model). */
    Time httpRequestOverhead = 15000;
    /** Socket write syscall overhead per request. */
    Time socketSyscall = 700;
    /** TCP accept + fd/session setup for one new client connection. */
    Time tcpAccept = 4200;
    /** Per-file string-search compute per byte (ag model), ns/byte. */
    double searchNsPerByte = 0.08;

    // Derived helpers --------------------------------------------------

    /** Cost of copying @p bytes at @p bw GB/s. */
    static Time
    xfer(std::uint64_t bytes, Bw bw)
    {
        return static_cast<Time>(static_cast<double>(bytes) / bw + 0.5);
    }

    /** Shootdown initiator cost for @p remoteCores responders. */
    Time
    shootdownInitiator(unsigned remoteCores) const
    {
        return remoteCores == 0 ? 0 : ipiBase + ipiPerCore * remoteCores;
    }

    /**
     * Conservative lookahead for the parallel engine (docs/engine.md):
     * the minimum latency of any cross-shard interaction the model can
     * express -- an IPI (ipiBase), one device arbitration quantum
     * (pmemLoadLat), or a contended lock hand-off (rwsemWriterAtomics).
     * Two isolation domains can never influence each other in less
     * virtual time than this, so each shard may advance this far past
     * the global minimum clock before a barrier.
     */
    Time
    crossShardLookahead() const
    {
        const Time la = std::min(
            ipiBase, std::min(pmemLoadLat, rwsemWriterAtomics));
        return la > 0 ? la : 1;
    }
};

/**
 * Check internal consistency of a cost model.
 * @return human-readable problems; empty when the model is usable.
 */
std::vector<std::string> validateCostModel(const CostModel &cm);

} // namespace dax::sim
