/**
 * @file
 * StatSet implementation.
 */
#include "sim/stats.h"

#include <sstream>

namespace dax::sim {

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[key, value] : other.counters_)
        counters_[key] += value;
}

std::string
StatSet::toString() const
{
    std::ostringstream os;
    for (const auto &[key, value] : counters_)
        os << key << "=" << value << "\n";
    return os.str();
}

} // namespace dax::sim
