/**
 * @file
 * StatSet legacy facade implementation.
 */
#include "sim/stats.h"

#include <sstream>

namespace dax::sim {

StatSet::StatSet()
    : owned_(std::make_unique<MetricsRegistry>()), registry_(owned_.get())
{}

StatSet::StatSet(MetricsRegistry &registry) : registry_(&registry) {}

void
StatSet::inc(const std::string &key, std::uint64_t delta)
{
    auto it = handles_.find(key);
    if (it == handles_.end())
        it = handles_.emplace(key, registry_->counter(key)).first;
    it->second.add(delta);
}

std::uint64_t
StatSet::get(const std::string &key) const
{
    return registry_->counterValue(key);
}

void
StatSet::clear()
{
    registry_->reset();
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[key, value] : other.all()) {
        if (value != 0)
            inc(key, value);
    }
}

std::string
StatSet::toString() const
{
    std::ostringstream os;
    for (const auto &[key, value] : all())
        os << key << "=" << value << "\n";
    return os.str();
}

std::map<std::string, std::uint64_t>
StatSet::all() const
{
    return registry_->peek().counters;
}

} // namespace dax::sim
