/**
 * @file
 * AddressSpace: POSIX mapping paths (mmap/munmap/mprotect/msync).
 * Fault handling lives in fault.cc, memory access in access.cc.
 */
#include "vm/address_space.h"

#include <algorithm>
#include <stdexcept>

#include "arch/pte.h"
#include "sim/trace.h"

namespace dax::vm {

namespace {

/** Base of the regular mmap area. */
constexpr std::uint64_t kMmapBase = 0x100000000ULL; // 4 GB
/** Base of the DaxVM ephemeral heap. */
constexpr std::uint64_t kEphemeralBase = 0x600000000000ULL;
/** Growth granule of the ephemeral heap (paper: 1 GB regions). */
constexpr std::uint64_t kEphemeralChunk = 1ULL << 30;

} // namespace

AddressSpace::AddressSpace(VmManager &vmm)
    : vmm_(vmm), asid_(vmm.nextAsid()), pt_(vmm.dramMeta()),
      mmapSem_("mmap_sem", vmm.cm().rwsemWriterAtomics,
               vmm.cm().rwsemReaderAtomics),
      fastPaths_(vmm.hostFastPaths()), vaBump_(kMmapBase)
{
    vmm_.registerSpace(this);
}

AddressSpace::~AddressSpace()
{
    for (auto &[start, vma] : vmas_)
        vmm_.unregisterMapping(vma.ino, this, start);
    for (auto &[start, vma] : ephemeral_.vmas)
        vmm_.unregisterMapping(vma.ino, this, start);
    vmm_.unregisterSpace(this);
}

std::uint64_t
AddressSpace::allocVaBump(std::uint64_t len, std::uint64_t align)
{
    if (align == 0)
        align = mem::kPageSize;
    std::uint64_t va = (vaBump_ + align - 1) / align * align;
    vaBump_ = va + len;
    return va;
}

AddressSpace::EphemeralRegion &
AddressSpace::ephemeralRegion()
{
    if (ephemeral_.base == 0) {
        ephemeral_.base = kEphemeralBase;
        ephemeral_.size = kEphemeralChunk;
    }
    return ephemeral_;
}

Vma &
AddressSpace::insertVma(const Vma &vma)
{
    auto [it, inserted] = vmas_.emplace(vma.start, vma);
    if (!inserted)
        throw std::logic_error("overlapping VMA insert");
    vmaGen_++;
    return it->second;
}

Vma *
AddressSpace::findVma(std::uint64_t va)
{
    // Ephemeral heap first: cheap range check, then its own map.
    if (ephemeral_.base != 0 && va >= ephemeral_.base
        && va < ephemeral_.base + ephemeral_.size) {
        auto it = ephemeral_.vmas.upper_bound(va);
        if (it != ephemeral_.vmas.begin()) {
            --it;
            if (it->second.contains(va))
                return &it->second;
        }
        return nullptr;
    }
    // Last-hit cache (Linux vmacache): page-local access streams hit
    // the same VMA almost every time; the generation check keeps a
    // pointer from surviving any tree mutation.
    if (fastPaths_ && vmaCache_ != nullptr && vmaCacheGen_ == vmaGen_
        && vmaCache_->contains(va)) {
        vmaCacheHits_++;
        return vmaCache_;
    }
    auto it = vmas_.upper_bound(va);
    if (it != vmas_.begin()) {
        --it;
        if (it->second.contains(va)) {
            vmaCache_ = &it->second;
            vmaCacheGen_ = vmaGen_;
            return &it->second;
        }
    }
    return nullptr;
}

bool
AddressSpace::eraseVma(std::uint64_t start)
{
    vmaGen_++;
    return vmas_.erase(start) != 0;
}

std::uint64_t
AddressSpace::mmap(sim::Cpu &cpu, fs::Ino ino, std::uint64_t off,
                   std::uint64_t len, bool write, unsigned flags)
{
    if (len == 0 || off % mem::kPageSize != 0)
        return 0;
    if (!vmm_.fs().exists(ino))
        return 0;
    DAX_SPAN(sim::TraceCat::Mmap, cpu, "mmap");
    cpu.advance(vmm_.cm().syscall);
    noteCore(cpu.coreId());
    len = (len + mem::kPageSize - 1) / mem::kPageSize * mem::kPageSize;

    std::uint64_t va = 0;
    {
        sim::ScopedWriteLock guard(mmapSem_, cpu);
        cpu.advance(vmm_.cm().vmaAlloc);
        // Align so huge-page-aligned file chunks stay huge-mappable.
        const std::uint64_t align =
            off % mem::kHugePageSize == 0 && len >= mem::kHugePageSize
                ? mem::kHugePageSize
                : mem::kPageSize;
        va = allocVaBump(len, align);
        Vma vma;
        vma.start = va;
        vma.end = va + len;
        vma.ino = ino;
        vma.fileOff = off;
        vma.writable = write;
        vma.flags = flags;
        insertVma(vma);
        vmm_.registerMapping(ino, this, va);
    }

    if ((flags & kMapPopulate) != 0) {
        // mm_populate(): retake the semaphore as reader and install
        // all translations without per-page traps.
        sim::ScopedReadLock guard(mmapSem_, cpu);
        Vma *vma = findVma(va);
        populateRange(cpu, *vma, 0, len, /*forWrite=*/false);
    }
    vmm_.counters().mmap.addAt(cpu.coreId());
    DAX_TRACE(sim::TraceCat::Mmap, cpu,
              "mmap ino=%llu off=0x%llx len=0x%llx -> va=0x%llx",
              (unsigned long long)ino, (unsigned long long)off,
              (unsigned long long)len, (unsigned long long)va);
    return va;
}

std::uint64_t
AddressSpace::zapRange(sim::Cpu &cpu, Vma &vma, std::uint64_t start,
                       std::uint64_t end, std::vector<std::uint64_t> &pages)
{
    const unsigned keep = vmm_.cm().tlbFlushThreshold + 1;
    std::uint64_t zapped = 0;
    std::uint64_t va = start;
    while (va < end) {
        const arch::WalkResult walk = pt_.lookup(va);
        if (!walk.present) {
            // Skip to the next page boundary (sparsely populated).
            va = (va / mem::kPageSize + 1) * mem::kPageSize;
            continue;
        }
        if (vma.daxvm && vma.attachLevel >= 0) {
            // DaxVM mappings detach whole file-table nodes: one
            // interior-slot clear covers the entire attachment span.
            const std::uint64_t aspan =
                arch::levelSpan(vma.attachLevel);
            const std::uint64_t abase = va / aspan * aspan;
            pt_.detach(abase, vma.attachLevel);
            cpu.advance(vmm_.cm().pteClear);
            zapped += aspan / mem::kPageSize;
            if (pages.size() < keep)
                pages.push_back(abase);
            va = abase + aspan;
            continue;
        }
        const std::uint64_t span = 1ULL << walk.pageShift;
        const std::uint64_t base = va / span * span;
        int level = arch::kPteLevel;
        if (walk.pageShift == 21)
            level = arch::kPmdLevel;
        else if (walk.pageShift == 30)
            level = arch::kPudLevel;
        pt_.clear(base, level);
        cpu.advance(vmm_.cm().pteClear);
        zapped += span / mem::kPageSize;
        if (pages.size() < keep)
            pages.push_back(base);
        va = base + span;
    }
    return zapped;
}

bool
AddressSpace::munmap(sim::Cpu &cpu, std::uint64_t va, std::uint64_t len)
{
    DAX_SPAN(sim::TraceCat::Mmap, cpu, "munmap");
    cpu.advance(vmm_.cm().syscall);
    noteCore(cpu.coreId());
    const std::uint64_t end = va + len;

    sim::ScopedWriteLock guard(mmapSem_, cpu);
    // Collect overlapping VMAs.
    std::vector<std::uint64_t> starts;
    for (auto it = vmas_.begin(); it != vmas_.end(); ++it) {
        if (it->second.start < end && it->second.end > va)
            starts.push_back(it->first);
    }
    if (starts.empty())
        return false;

    for (const auto s : starts) {
        Vma &vma = vmas_.at(s);
        const std::uint64_t zs = std::max(va, vma.start);
        const std::uint64_t ze = std::min(end, vma.end);

        std::vector<std::uint64_t> pages;
        const std::uint64_t zapped = zapRange(cpu, vma, zs, ze, pages);
        if (zapped > 0) {
            // Linux flushes the TLB before dropping mmap_sem
            // (tlb_finish_mmu inside the unmap path). zapRange may
            // coarsen/truncate the list, so pass the real page count.
            vmm_.hub().shootdownPages(cpu, cpuMask_, asid_, pages,
                                      zapped);
        }

        if (zs == vma.start && ze == vma.end) {
            cpu.advance(vmm_.cm().vmaFree);
            vmm_.unregisterMapping(vma.ino, this, vma.start);
            eraseVma(s);
        } else if (zs == vma.start) {
            // Trim the front: re-key.
            cpu.advance(vmm_.cm().vmaSplit);
            Vma rest = vma;
            vmm_.unregisterMapping(vma.ino, this, vma.start);
            eraseVma(s);
            rest.fileOff += ze - rest.start;
            rest.start = ze;
            insertVma(rest);
            vmm_.registerMapping(rest.ino, this, rest.start);
        } else if (ze == vma.end) {
            cpu.advance(vmm_.cm().vmaSplit);
            vma.end = zs;
        } else {
            // Hole in the middle: split into two.
            cpu.advance(vmm_.cm().vmaSplit);
            Vma tail = vma;
            tail.fileOff += ze - vma.start;
            tail.start = ze;
            vma.end = zs;
            insertVma(tail);
            vmm_.registerMapping(tail.ino, this, tail.start);
        }
    }
    vmm_.counters().munmap.addAt(cpu.coreId());
    DAX_TRACE(sim::TraceCat::Mmap, cpu, "munmap va=0x%llx len=0x%llx",
              (unsigned long long)va, (unsigned long long)len);
    if (vmm_.checkHook() != nullptr)
        vmm_.checkHook()->onCheck(sim::CheckEvent::Munmap, cpu.now());
    return true;
}

bool
AddressSpace::mprotect(sim::Cpu &cpu, std::uint64_t va, std::uint64_t len,
                       bool write)
{
    DAX_SPAN(sim::TraceCat::Mmap, cpu, "mprotect");
    cpu.advance(vmm_.cm().syscall);
    const std::uint64_t end = va + len;

    // Ephemeral mappings support no memory operations (Section IV-F).
    if (ephemeral_.base != 0 && va >= ephemeral_.base
        && va < ephemeral_.base + ephemeral_.size) {
        return false;
    }

    sim::ScopedWriteLock guard(mmapSem_, cpu);
    Vma *vma = findVma(va);
    if (vma == nullptr || end > vma->end)
        return false;
    if (vma->daxvm && (vma->start != va || vma->end != end)) {
        // DaxVM allows protection changes only on entire mappings.
        return false;
    }

    // Split so the protection change applies exactly to [va, end).
    if (vma->start < va) {
        cpu.advance(vmm_.cm().vmaSplit);
        Vma tail = *vma;
        tail.fileOff += va - vma->start;
        tail.start = va;
        vma->end = va;
        Vma &inserted = insertVma(tail);
        vmm_.registerMapping(inserted.ino, this, inserted.start);
        vma = &inserted;
    }
    if (vma->end > end) {
        cpu.advance(vmm_.cm().vmaSplit);
        Vma tail = *vma;
        tail.fileOff += end - vma->start;
        tail.start = end;
        vma->end = end;
        Vma &inserted = insertVma(tail);
        vmm_.registerMapping(inserted.ino, this, inserted.start);
    }
    vma->writable = write;

    // Downgrades must clear PTE write bits + flush TLBs.
    if (!write) {
        std::vector<std::uint64_t> pages;
        std::uint64_t downgraded = 0;
        std::uint64_t cur = vma->start;
        while (cur < vma->end) {
            const arch::WalkResult walk = pt_.lookup(cur);
            if (!walk.present) {
                cur = (cur / mem::kPageSize + 1) * mem::kPageSize;
                continue;
            }
            const std::uint64_t span = 1ULL << walk.pageShift;
            const std::uint64_t base = cur / span * span;
            int level = walk.pageShift == 21   ? arch::kPmdLevel
                        : walk.pageShift == 30 ? arch::kPudLevel
                                               : arch::kPteLevel;
            pt_.setFlags(base, level, 0, arch::pte::kWrite);
            cpu.advance(vmm_.cm().wrProtect);
            downgraded += span / mem::kPageSize;
            if (pages.size() <= vmm_.cm().tlbFlushThreshold)
                pages.push_back(base);
            cur = base + span;
        }
        vmm_.hub().shootdownPages(cpu, cpuMask_, asid_, pages,
                                  downgraded);
    }
    vmm_.counters().mprotect.addAt(cpu.coreId());
    return true;
}

std::unique_ptr<AddressSpace>
AddressSpace::fork(sim::Cpu &cpu)
{
    DAX_SPAN(sim::TraceCat::Mmap, cpu, "fork");
    cpu.advance(vmm_.cm().syscall);
    auto child = std::make_unique<AddressSpace>(vmm_);
    child->vaBump_ = vaBump_;
    child->noteCore(cpu.coreId());

    sim::ScopedWriteLock guard(mmapSem_, cpu);
    for (const auto &[start, vma] : vmas_) {
        Vma copy = vma;
        copy.zombie = false;
        child->insertVma(copy);
        vmm_.registerMapping(copy.ino, child.get(), copy.start);
        cpu.advance(vmm_.cm().vmaAlloc);

        if (vma.daxvm && vma.attachLevel >= 0) {
            // Re-attach the shared file-table nodes: one slot write
            // per granule, preserving the parent's current
            // permissions (dirty tracking keeps working).
            const std::uint64_t span =
                arch::levelSpan(vma.attachLevel);
            for (std::uint64_t va = vma.start; va < vma.end;
                 va += span) {
                if (arch::Node *node =
                        pt_.attachedNode(va, vma.attachLevel)) {
                    const arch::WalkResult walk = pt_.lookup(va);
                    const unsigned newPages = child->pt_.attach(
                        va, vma.attachLevel, node,
                        walk.present && walk.writable);
                    cpu.advance(vmm_.cm().tableAttach
                                + vmm_.cm().ptPageAlloc * newPages);
                    continue;
                }
                // Huge chunk installed directly in the private tree:
                // copy the entry.
                const arch::WalkResult walk = pt_.lookup(va);
                if (walk.present
                    && walk.pageShift
                           == arch::levelShift(vma.attachLevel)) {
                    child->pt_.map(va, walk.paddr & ~(span - 1),
                                   vma.attachLevel,
                                   walk.writable ? arch::pte::kWrite
                                                 : 0);
                    cpu.advance(vmm_.cm().pmdSet);
                }
            }
            continue;
        }

        // POSIX shared file mapping: copy present translations.
        std::uint64_t va = vma.start;
        while (va < vma.end) {
            const arch::WalkResult walk = pt_.lookup(va);
            if (!walk.present) {
                va = (va / mem::kPageSize + 1) * mem::kPageSize;
                continue;
            }
            const std::uint64_t span = 1ULL << walk.pageShift;
            const std::uint64_t base = va / span * span;
            const int level = walk.pageShift == 21 ? arch::kPmdLevel
                              : walk.pageShift == 30
                                  ? arch::kPudLevel
                                  : arch::kPteLevel;
            const arch::Pte e =
                walk.writable ? arch::pte::kWrite : 0;
            const unsigned newPages = child->pt_.map(
                base, walk.paddr & ~(span - 1), level,
                e | (walk.dram ? arch::pte::kSoftDram : 0));
            cpu.advance(vmm_.cm().pteSet
                        + vmm_.cm().ptPageAlloc * newPages);
            va = base + span;
        }
    }
    vmm_.counters().forks.addAt(cpu.coreId());
    return child;
}

std::uint64_t
AddressSpace::mremap(sim::Cpu &cpu, std::uint64_t oldVa,
                     std::uint64_t oldLen, std::uint64_t newLen)
{
    DAX_SPAN(sim::TraceCat::Mmap, cpu, "mremap");
    cpu.advance(vmm_.cm().syscall);
    newLen = (newLen + mem::kPageSize - 1) / mem::kPageSize
           * mem::kPageSize;

    // Ephemeral mappings support no memory operations.
    if (ephemeral_.base != 0 && oldVa >= ephemeral_.base
        && oldVa < ephemeral_.base + ephemeral_.size) {
        return 0;
    }

    sim::ScopedWriteLock guard(mmapSem_, cpu);
    Vma *vma = findVma(oldVa);
    if (vma == nullptr || newLen == 0)
        return 0;
    // DaxVM (and this simulator's POSIX path) resize whole mappings.
    if (vma->start != oldVa || vma->length() != oldLen)
        return 0;

    if (newLen <= vma->length()) {
        // Shrink in place: zap the tail.
        const std::uint64_t zs = vma->start + newLen;
        std::vector<std::uint64_t> pages;
        const std::uint64_t zapped =
            zapRange(cpu, *vma, zs, vma->end, pages);
        if (zapped > 0)
            vmm_.hub().shootdownPages(cpu, cpuMask_, asid_, pages,
                                      zapped);
        cpu.advance(vmm_.cm().vmaSplit);
        vma->end = zs;
        vmm_.counters().mremap.addAt(cpu.coreId());
        return vma->start;
    }

    // Grow: in place when the bump allocator has not placed anything
    // after this VMA, otherwise move.
    auto next = vmas_.upper_bound(vma->start);
    const bool inPlace =
        next == vmas_.end() || next->second.start >= vma->start + newLen;
    if (inPlace) {
        cpu.advance(vmm_.cm().vmaSplit);
        vma->end = vma->start + newLen;
        // Reserve the grown range from the bump allocator so no later
        // mapping lands inside it.
        if (vma->end > vaBump_)
            vaBump_ = vma->end;
        vmm_.counters().mremap.addAt(cpu.coreId());
        return vma->start;
    }

    // DaxVM attachments are not transplanted; a user would remap the
    // file instead (the attach is O(1) anyway).
    if (vma->daxvm)
        return 0;

    // Move: allocate a new range and transplant translations (Linux
    // moves page-table entries rather than refaulting).
    cpu.advance(vmm_.cm().vmaAlloc);
    const std::uint64_t newStart = allocVaBump(newLen, mem::kPageSize);
    std::uint64_t moved = 0;
    std::vector<std::uint64_t> pages;
    std::uint64_t cur = vma->start;
    while (cur < vma->end) {
        const arch::WalkResult walk = pt_.lookup(cur);
        if (!walk.present) {
            cur = (cur / mem::kPageSize + 1) * mem::kPageSize;
            continue;
        }
        const std::uint64_t span = 1ULL << walk.pageShift;
        const std::uint64_t base = cur / span * span;
        const int level = walk.pageShift == 21   ? arch::kPmdLevel
                          : walk.pageShift == 30 ? arch::kPudLevel
                                                 : arch::kPteLevel;
        const arch::Pte old = pt_.clear(base, level);
        pt_.map(newStart + (base - vma->start), arch::pte::addr(old),
                level,
                old
                    & (arch::pte::kWrite | arch::pte::kSoftDirtyTracked));
        cpu.advance(vmm_.cm().pteClear + vmm_.cm().pteSet);
        moved += span / mem::kPageSize;
        if (pages.size() <= vmm_.cm().tlbFlushThreshold)
            pages.push_back(base);
        cur = base + span;
    }
    if (moved > 0)
        vmm_.hub().shootdownPages(cpu, cpuMask_, asid_, pages, moved);

    Vma rest = *vma;
    vmm_.unregisterMapping(vma->ino, this, vma->start);
    eraseVma(vma->start);
    rest.start = newStart;
    rest.end = newStart + newLen;
    insertVma(rest);
    vmm_.registerMapping(rest.ino, this, newStart);
    cpu.advance(vmm_.cm().vmaFree);
    vmm_.counters().mremapMoves.addAt(cpu.coreId());
    return newStart;
}

bool
AddressSpace::msync(sim::Cpu &cpu, std::uint64_t va, std::uint64_t len)
{
    DAX_SPAN(sim::TraceCat::Mmap, cpu, "msync");
    cpu.advance(vmm_.cm().syscall);
    Vma *vma = findVma(va);
    if (vma == nullptr)
        return false;
    if (vma->daxvm && (vma->flags & kMapNoMsync) != 0) {
        // nosync mode: msync is a documented no-op (Section IV-D).
        vmm_.counters().msyncNoop.addAt(cpu.coreId());
        return true;
    }
    const std::uint64_t end = std::min(va + len, vma->end);
    sim::ScopedReadLock guard(mmapSem_, cpu);
    vmm_.syncFile(cpu, vma->ino, vma->fileOffsetOf(va), end - va);
    return true;
}

} // namespace dax::vm
