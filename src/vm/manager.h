/**
 * @file
 * Kernel-wide virtual memory state shared by all address spaces:
 *
 *  - the per-inode reverse-mapping registry (Linux address_space
 *    ->i_mmap): which (AddressSpace, VMA) pairs map each file;
 *  - the per-inode dirty-page interval tree used by kernel-space
 *    dirty tracking (the page-cache tags of paper Section III-A4);
 *  - the FsHooks implementation that zaps mappings synchronously when
 *    the file system reclaims blocks (truncate/unlink safety).
 */
#pragma once

#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "arch/perf.h"
#include "arch/shootdown.h"
#include "fs/file_system.h"
#include "mem/frame_alloc.h"
#include "sim/cost_model.h"
#include "sim/locks.h"
#include "sim/metrics.h"
#include "sim/stats.h"

namespace dax::vm {

class AddressSpace;

/**
 * SIGBUS (BUS_MCEERR_AR) delivered to the simulated thread whose load
 * through a DAX mapping hit a poisoned line that the active media
 * policy could not repair. Carries the faulting VA and the poisoned
 * physical line for the harness/workload to report.
 */
class SigBusException : public std::exception
{
  public:
    SigBusException(std::uint64_t va, std::uint64_t paddr)
        : va_(va), paddr_(paddr)
    {}

    const char *what() const noexcept override
    {
        return "SIGBUS: uncorrectable media error in mapped page";
    }

    std::uint64_t va() const { return va_; }
    std::uint64_t paddr() const { return paddr_; }

  private:
    std::uint64_t va_;
    std::uint64_t paddr_;
};

/** Dirty intervals in units of 4 KB file pages: startPage -> count. */
using DirtySet = std::map<std::uint64_t, std::uint64_t>;

class VmManager : public fs::FsHooks
{
  public:
    /**
     * @param metrics shared telemetry registry; when null (standalone
     *        tests) the manager owns a private one
     */
    VmManager(const sim::CostModel &cm, arch::ShootdownHub &hub,
              fs::FileSystem &fs, mem::FrameAllocator &dramMeta,
              mem::Device &dram, sim::MetricsRegistry *metrics = nullptr);
    ~VmManager() override;

    // ------------------------------------------------------------------
    // Reverse mapping (i_mmap)
    // ------------------------------------------------------------------
    void registerMapping(fs::Ino ino, AddressSpace *as,
                         std::uint64_t vmaStart);
    void unregisterMapping(fs::Ino ino, AddressSpace *as,
                           std::uint64_t vmaStart);

    struct MappingRef
    {
        AddressSpace *as;
        std::uint64_t vmaStart;
    };

    const std::vector<MappingRef> &mappingsOf(fs::Ino ino) const;

    // ------------------------------------------------------------------
    // Kernel dirty tracking
    // ------------------------------------------------------------------

    /** Tag [startPage, startPage+count) of @p ino dirty (radix tag). */
    void markDirty(sim::Cpu &cpu, fs::Ino ino, std::uint64_t startPage,
                   std::uint64_t count);

    /** Dirty intervals of a file (empty set when clean). */
    const DirtySet &dirtyOf(fs::Ino ino) const;

    /** Total dirty 4 KB pages of @p ino. */
    std::uint64_t dirtyPages(fs::Ino ino) const;

    /**
     * Kernel sync of @p ino's mapped dirty data in [off, off+len):
     * flush CPU cache lines for dirty intervals, write-protect the
     * pages again in every mapping process (with shootdowns), clear
     * the tags, and commit metadata.
     */
    void syncFile(sim::Cpu &cpu, fs::Ino ino, std::uint64_t off,
                  std::uint64_t len);

    // ------------------------------------------------------------------
    // FsHooks: storage reclamation safety
    // ------------------------------------------------------------------
    void onBlocksAllocated(sim::Cpu &cpu, fs::Inode &inode,
                           std::uint64_t fileBlock,
                           const fs::Extent &extent) override;
    void onBlocksFreeing(sim::Cpu &cpu, fs::Inode &inode,
                         std::uint64_t fileBlock,
                         const fs::Extent &extent) override;
    void onInodeEvict(fs::Inode &inode) override;

    // Plumbing -----------------------------------------------------------
    const sim::CostModel &cm() const { return cm_; }
    arch::ShootdownHub &hub() { return hub_; }
    fs::FileSystem &fs() { return fs_; }
    mem::FrameAllocator &dramMeta() { return dramMeta_; }
    mem::Device &dram() { return dram_; }
    sim::StatSet &stats() { return stats_; }
    sim::MetricsRegistry &metricsRegistry() { return *metrics_; }

    /** Typed hot-path instruments (legacy names, see sim/metrics.h). */
    struct VmCounters
    {
        sim::Counter mmap;
        sim::Counter munmap;
        sim::Counter mprotect;
        sim::Counter forks;
        sim::Counter mremap;
        sim::Counter mremapMoves;
        sim::Counter msyncNoop;
        sim::Counter dirtyTags;
        sim::Counter syncWholeFile;
        sim::Counter syncFlushedPages;
        sim::Counter syncs;
        sim::Counter truncateZaps;
        sim::Counter majorFaults;
        sim::Counter faults;
        sim::Counter daxvmWpFaults;
        sim::Counter wpFaults;
        sim::Counter populates;
        sim::LatencyHistogram faultNs;
    };
    VmCounters &counters() { return counters_; }

    /**
     * Live address-space tracking: AddressSpace registers itself at
     * construction and deposits its mmap_sem LockStats and MMU perf
     * counters here at destruction, so the "vm.mmap_sem.*" and
     * "arch.mmu.*" gauges aggregate across live and retired processes.
     */
    void registerSpace(AddressSpace *as) { spaces_.insert(as); }
    void unregisterSpace(AddressSpace *as);

    /** Live address spaces, for invariant checkers. */
    const std::set<AddressSpace *> &spaces() const { return spaces_; }

    /** Inodes with reverse-mapping state, for invariant checkers. */
    std::vector<fs::Ino>
    mappedInodes() const
    {
        std::vector<fs::Ino> inos;
        inos.reserve(inodeVm_.size());
        for (const auto &[ino, state] : inodeVm_)
            inos.push_back(ino);
        return inos;
    }

    /** Invariant-check observer fired after each munmap. */
    void setCheckHook(sim::CheckHook *hook) { checkHook_ = hook; }
    sim::CheckHook *checkHook() const { return checkHook_; }

    /** Next ASID for a new address space. */
    arch::Asid nextAsid() { return nextAsid_++; }

    /**
     * Machine checks delivered as SIGBUS through mapped accesses.
     * Plain member, not a registry counter: fault-free runs must stay
     * byte-identical in the stats dump.
     */
    void noteMceSigbus() { mceSigbus_++; }
    std::uint64_t mceSigbus() const { return mceSigbus_; }

    /** Global huge-page policy (Fig. 6 turns huge pages off). */
    bool hugePagesEnabled() const { return hugePages_; }
    void setHugePagesEnabled(bool enabled) { hugePages_ = enabled; }

    /**
     * Host-side fast-path policy inherited by new address spaces
     * (last-hit VMA cache). Observationally pure either way; the
     * escape hatch exists so the golden-equivalence test can prove it.
     */
    bool hostFastPaths() const { return hostFastPaths_; }
    void setHostFastPaths(bool enabled) { hostFastPaths_ = enabled; }

    /**
     * Crash: reverse mappings and dirty tags are volatile kernel
     * state - forget them. Surviving AddressSpace objects must be
     * destroyed by the harness (their processes died with the power);
     * a late unregisterMapping on the emptied registry is a no-op.
     */
    void resetVolatile() { inodeVm_.clear(); }

  private:
    struct InodeVm
    {
        std::vector<MappingRef> mappings;
        DirtySet dirty;
    };

    InodeVm &inodeVm(fs::Ino ino) { return inodeVm_[ino]; }

    const sim::CostModel &cm_;
    arch::ShootdownHub &hub_;
    fs::FileSystem &fs_;
    mem::FrameAllocator &dramMeta_;
    mem::Device &dram_;
    std::unique_ptr<sim::MetricsRegistry> ownedMetrics_;
    sim::MetricsRegistry *metrics_;
    std::map<fs::Ino, InodeVm> inodeVm_;
    sim::CheckHook *checkHook_ = nullptr;
    arch::Asid nextAsid_ = 1;
    std::uint64_t mceSigbus_ = 0;
    bool hugePages_ = true;
    bool hostFastPaths_ = true;
    sim::StatSet stats_;
    VmCounters counters_;
    std::set<AddressSpace *> spaces_;
    sim::LockStats retiredSemRead_;
    sim::LockStats retiredSemWrite_;
    arch::MmuPerf retiredPerf_;
    sim::Time retiredExecNs_ = 0;

    static const std::vector<MappingRef> kNoMappings;
    static const DirtySet kNoDirty;
};

/** Insert [start, start+count) into a dirty interval set, merging. */
void dirtySetInsert(DirtySet &set, std::uint64_t start,
                    std::uint64_t count);

} // namespace dax::vm
