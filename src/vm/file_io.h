/**
 * @file
 * User-side helpers around system-call file access.
 *
 * Captures the micro-architectural asymmetry of paper Section III-C:
 * after read(), file bytes are cache/DRAM-resident so user processing
 * is fast; with mapped access the user code pays PMem latency itself
 * (charged by AddressSpace::memRead). Kernel copies were already
 * penalized by CostModel::kernelCopyFactor inside FileSystem.
 */
#pragma once

#include <cstdint>

#include "fs/file_system.h"
#include "sim/cost_model.h"
#include "sim/engine.h"

namespace dax::vm {

/**
 * Charge the cost of user code scanning @p bytes that live in a
 * cache-warm DRAM buffer (post-read processing).
 */
void processCached(sim::Cpu &cpu, const sim::CostModel &cm,
                   std::uint64_t bytes);

/**
 * Charge pure compute of user code over @p bytes (applies equally to
 * mapped and buffered access), at @p nsPerByte.
 */
void chargeCompute(sim::Cpu &cpu, double nsPerByte, std::uint64_t bytes);

/**
 * read() + process: the classic "read file into private buffer and
 * consume it" sequence. @return bytes read.
 */
std::uint64_t readAndProcess(sim::Cpu &cpu, fs::FileSystem &fs,
                             const sim::CostModel &cm, fs::Ino ino,
                             std::uint64_t off, std::uint64_t len,
                             void *buf = nullptr);

} // namespace dax::vm
