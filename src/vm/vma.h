/**
 * @file
 * Virtual memory area (VMA) types and mapping flags.
 */
#pragma once

#include <cstdint>

#include "fs/inode.h"

namespace dax::vm {

/** mmap flags (POSIX subset + the three DaxVM flags of Section IV-F). */
enum MapFlag : unsigned
{
    /** Pre-fault all pages at mmap time (MAP_POPULATE). */
    kMapPopulate = 1u << 0,
    /** Synchronous DAX semantics (MAP_SYNC): metadata must be durable
     *  before a page is writably mapped. */
    kMapSync = 1u << 1,
    /** DaxVM: short-lived mapping, no memory-op support needed. */
    kMapEphemeral = 1u << 2,
    /** DaxVM: munmap may be deferred and batched. */
    kMapUnmapAsync = 1u << 3,
    /** DaxVM: drop all kernel dirty tracking; msync becomes a no-op. */
    kMapNoMsync = 1u << 4,
};

struct Vma
{
    std::uint64_t start = 0;  ///< inclusive
    std::uint64_t end = 0;    ///< exclusive
    fs::Ino ino = 0;
    std::uint64_t fileOff = 0;  ///< file offset backing 'start'
    bool writable = false;
    unsigned flags = 0;
    /** Created through daxvm_mmap (file-table attachments back it). */
    bool daxvm = false;
    /** Lives in the ephemeral heap (not in the main VMA tree). */
    bool ephemeral = false;
    /** Deferred unmap: unmapped by the user, TLB flush pending. */
    bool zombie = false;
    /** DaxVM attachment level (kPmdLevel/kPudLevel), -1 for POSIX. */
    int attachLevel = -1;
    /**
     * DaxVM: 4 KB pages actually backing requested file content (the
     * attachment spans are rounded up; TLB-coherence bookkeeping works
     * on the pages that can be cached, not the silent padding).
     */
    std::uint64_t usedPages = 0;
    /** Opaque DaxVM per-mapping state (daxvm::MappingState). */
    void *daxPriv = nullptr;

    std::uint64_t length() const { return end - start; }

    bool
    contains(std::uint64_t va) const
    {
        return va >= start && va < end;
    }

    /** File offset backing virtual address @p va. */
    std::uint64_t
    fileOffsetOf(std::uint64_t va) const
    {
        return fileOff + (va - start);
    }
};

} // namespace dax::vm
