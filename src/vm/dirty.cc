/**
 * @file
 * VmManager: reverse mappings, kernel dirty tracking, sync, and
 * storage-reclamation safety hooks.
 */
#include "vm/manager.h"

#include <algorithm>

#include "arch/pte.h"
#include "vm/address_space.h"

namespace dax::vm {

const std::vector<VmManager::MappingRef> VmManager::kNoMappings;
const DirtySet VmManager::kNoDirty;

VmManager::VmManager(const sim::CostModel &cm, arch::ShootdownHub &hub,
                     fs::FileSystem &fs, mem::FrameAllocator &dramMeta,
                     mem::Device &dram)
    : cm_(cm), hub_(hub), fs_(fs), dramMeta_(dramMeta), dram_(dram)
{
    fs_.addHooks(this);
}

VmManager::~VmManager()
{
    fs_.removeHooks(this);
}

void
dirtySetInsert(DirtySet &set, std::uint64_t start, std::uint64_t count)
{
    if (count == 0)
        return;
    std::uint64_t end = start + count;

    // Merge with any overlapping/adjacent predecessor.
    auto it = set.upper_bound(start);
    if (it != set.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second >= start) {
            start = prev->first;
            end = std::max(end, prev->first + prev->second);
            it = set.erase(prev);
        }
    }
    // Swallow successors.
    while (it != set.end() && it->first <= end) {
        end = std::max(end, it->first + it->second);
        it = set.erase(it);
    }
    set.emplace(start, end - start);
}

void
VmManager::registerMapping(fs::Ino ino, AddressSpace *as,
                           std::uint64_t vmaStart)
{
    inodeVm(ino).mappings.push_back({as, vmaStart});
}

void
VmManager::unregisterMapping(fs::Ino ino, AddressSpace *as,
                             std::uint64_t vmaStart)
{
    auto it = inodeVm_.find(ino);
    if (it == inodeVm_.end())
        return;
    auto &mappings = it->second.mappings;
    mappings.erase(
        std::remove_if(mappings.begin(), mappings.end(),
                       [&](const MappingRef &r) {
                           return r.as == as && r.vmaStart == vmaStart;
                       }),
        mappings.end());
}

const std::vector<VmManager::MappingRef> &
VmManager::mappingsOf(fs::Ino ino) const
{
    auto it = inodeVm_.find(ino);
    return it == inodeVm_.end() ? kNoMappings : it->second.mappings;
}

void
VmManager::markDirty(sim::Cpu &cpu, fs::Ino ino, std::uint64_t startPage,
                     std::uint64_t count)
{
    cpu.advance(cm_.dirtyTag);
    dirtySetInsert(inodeVm(ino).dirty, startPage, count);
    stats_.inc("vm.dirty_tags");
}

const DirtySet &
VmManager::dirtyOf(fs::Ino ino) const
{
    auto it = inodeVm_.find(ino);
    return it == inodeVm_.end() ? kNoDirty : it->second.dirty;
}

std::uint64_t
VmManager::dirtyPages(fs::Ino ino) const
{
    std::uint64_t total = 0;
    for (const auto &[start, count] : dirtyOf(ino)) {
        (void)start;
        total += count;
    }
    return total;
}

void
VmManager::syncFile(sim::Cpu &cpu, fs::Ino ino, std::uint64_t off,
                    std::uint64_t len)
{
    fs::Inode &node = fs_.inode(ino);
    auto &iv = inodeVm(ino);

    // POSIX/DaxVM coexistence (paper Section IV-D): when a nosync
    // DaxVM mapping of the same file exists, its writes are invisible
    // to dirty tracking, so the POSIX syncer must flush the whole file.
    bool flushWhole = false;
    for (const auto &ref : iv.mappings) {
        if (Vma *vma = ref.as->findVma(ref.vmaStart)) {
            if (vma->daxvm && (vma->flags & kMapNoMsync) != 0)
                flushWhole = true;
        }
    }

    std::uint64_t firstPage = off / fs::kBlockSize;
    std::uint64_t endPage =
        (off + len + fs::kBlockSize - 1) / fs::kBlockSize;
    if (flushWhole) {
        firstPage = 0;
        endPage = node.sizeBlocks();
        // Flush the entire file's cache lines, not just tagged pages.
        for (const auto &[fb, extent] : node.extents) {
            (void)fb;
            fs_.device().write(cpu, fs_.blockAddr(extent.block),
                               extent.bytes(), mem::WriteMode::CachedFlush,
                               mem::Pattern::Seq);
            // Functional write-back: dirty lines become durable.
            fs_.device().flushRange(fs_.blockAddr(extent.block),
                                    extent.bytes());
        }
        stats_.inc("vm.sync_whole_file");
    }

    // Flush dirty intervals in range and collect pages to re-protect.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> flushed;
    for (auto it = iv.dirty.begin(); it != iv.dirty.end();) {
        const std::uint64_t start = it->first;
        const std::uint64_t count = it->second;
        if (start >= endPage || start + count <= firstPage) {
            ++it;
            continue;
        }
        const std::uint64_t s = std::max(start, firstPage);
        const std::uint64_t e = std::min(start + count, endPage);
        if (!flushWhole) {
            // clwb each dirty page's lines, walking file extents.
            std::uint64_t page = s;
            while (page < e) {
                const auto run = node.find(page);
                if (!run)
                    break;
                const std::uint64_t pages =
                    std::min(e - page, run->count);
                fs_.device().write(cpu,
                                   fs_.blockAddr(run->physBlock),
                                   pages * fs::kBlockSize,
                                   mem::WriteMode::CachedFlush,
                                   mem::Pattern::Seq);
                // Functional write-back: dirty lines become durable.
                fs_.device().flushRange(fs_.blockAddr(run->physBlock),
                                        pages * fs::kBlockSize);
                page += pages;
            }
        }
        flushed.emplace_back(s, e - s);
        // Trim the interval out of the dirty set.
        it = iv.dirty.erase(it);
        if (start < s)
            iv.dirty.emplace(start, s - start);
        if (start + count > e)
            iv.dirty.emplace(e, start + count - e);
        stats_.inc("vm.sync_flushed_pages", e - s);
    }

    // Write-protect flushed pages in every mapping process to restart
    // dirty tracking, with shootdowns (paper Section III-A4).
    for (const auto &ref : iv.mappings) {
        AddressSpace *as = ref.as;
        Vma *vma = as->findVma(ref.vmaStart);
        if (vma == nullptr)
            continue;
        if (vma->daxvm) {
            if ((vma->flags & kMapNoMsync) != 0)
                continue; // untracked by design
            // DaxVM re-protects at the attachment level (2 MB or
            // coarser), never inside the shared file tables.
            const std::uint64_t span =
                arch::levelSpan(vma->attachLevel);
            std::vector<std::uint64_t> bases;
            for (const auto &[s, cnt] : flushed) {
                const std::uint64_t loByte = s * fs::kBlockSize;
                const std::uint64_t hiByte = (s + cnt) * fs::kBlockSize;
                for (std::uint64_t va = vma->start; va < vma->end;
                     va += span) {
                    const std::uint64_t fo = vma->fileOffsetOf(va);
                    if (fo + span <= loByte || fo >= hiByte)
                        continue;
                    if (as->pageTable().setAttachmentWritable(
                            va, vma->attachLevel, false)
                        || as->pageTable().setFlags(va, vma->attachLevel,
                                                    0,
                                                    arch::pte::kWrite)) {
                        cpu.advance(cm_.wrProtect);
                        bases.push_back(va);
                    }
                }
            }
            if (!bases.empty()) {
                hub_.shootdownFull(cpu, as->cpuMask(), as->asid());
            }
            continue;
        }
        std::vector<std::uint64_t> protPages;
        for (const auto &[s, cnt] : flushed) {
            std::uint64_t p = s;
            while (p < s + cnt) {
                const std::uint64_t fileByte = p * fs::kBlockSize;
                if (fileByte < vma->fileOff
                    || fileByte >= vma->fileOff + vma->length()) {
                    p++;
                    continue;
                }
                const std::uint64_t va =
                    vma->start + (fileByte - vma->fileOff);
                const arch::WalkResult walk =
                    as->pageTable().lookup(va);
                if (!walk.present) {
                    p++;
                    continue;
                }
                // Re-protect at the granularity the page is mapped
                // with (one PMD write for a 2 MB page).
                const std::uint64_t span = 1ULL << walk.pageShift;
                const std::uint64_t base = va / span * span;
                const int level = walk.pageShift == 21
                                      ? arch::kPmdLevel
                                  : walk.pageShift == 30
                                      ? arch::kPudLevel
                                      : arch::kPteLevel;
                if (as->pageTable().setFlags(base, level, 0,
                                             arch::pte::kWrite)) {
                    cpu.advance(cm_.wrProtect);
                    protPages.push_back(base);
                }
                const std::uint64_t nextByte =
                    vma->fileOffsetOf(base) + span;
                p = (nextByte + fs::kBlockSize - 1) / fs::kBlockSize;
            }
        }
        if (!protPages.empty()) {
            hub_.shootdownPages(cpu, as->cpuMask(), as->asid(),
                                protPages);
        }
    }

    fs_.journal().commit(cpu, ino);
    stats_.inc("vm.syncs");
}

void
VmManager::onBlocksAllocated(sim::Cpu &cpu, fs::Inode &inode,
                             std::uint64_t fileBlock,
                             const fs::Extent &extent)
{
    (void)cpu;
    (void)inode;
    (void)fileBlock;
    (void)extent;
}

void
VmManager::onBlocksFreeing(sim::Cpu &cpu, fs::Inode &inode,
                           std::uint64_t fileBlock,
                           const fs::Extent &extent)
{
    // Synchronously unmap reclaimed pages from every POSIX mapping
    // (DaxVM detachment is handled by the DaxVM hook).
    auto it = inodeVm_.find(inode.ino);
    if (it == inodeVm_.end())
        return;
    const std::uint64_t byteStart = fileBlock * fs::kBlockSize;
    const std::uint64_t byteEnd = byteStart + extent.bytes();
    for (const auto &ref : it->second.mappings) {
        AddressSpace *as = ref.as;
        Vma *vma = as->findVma(ref.vmaStart);
        if (vma == nullptr || vma->daxvm)
            continue;
        const std::uint64_t vmaFileEnd = vma->fileOff + vma->length();
        if (byteEnd <= vma->fileOff || byteStart >= vmaFileEnd)
            continue;
        const std::uint64_t s =
            vma->start + (std::max(byteStart, vma->fileOff)
                          - vma->fileOff);
        const std::uint64_t e =
            vma->start + (std::min(byteEnd, vmaFileEnd) - vma->fileOff);
        std::vector<std::uint64_t> pages;
        const std::uint64_t zapped = as->zapRange(cpu, *vma, s, e, pages);
        if (zapped > 0)
            hub_.shootdownPages(cpu, as->cpuMask(), as->asid(), pages);
        stats_.inc("vm.truncate_zaps", zapped);
    }
}

void
VmManager::onInodeEvict(fs::Inode &inode)
{
    (void)inode;
}

} // namespace dax::vm
