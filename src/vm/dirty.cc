/**
 * @file
 * VmManager: reverse mappings, kernel dirty tracking, sync, and
 * storage-reclamation safety hooks.
 */
#include "vm/manager.h"

#include <algorithm>

#include "arch/pte.h"
#include "sim/trace.h"
#include "vm/address_space.h"

namespace dax::vm {

const std::vector<VmManager::MappingRef> VmManager::kNoMappings;
const DirtySet VmManager::kNoDirty;

VmManager::VmManager(const sim::CostModel &cm, arch::ShootdownHub &hub,
                     fs::FileSystem &fs, mem::FrameAllocator &dramMeta,
                     mem::Device &dram, sim::MetricsRegistry *metrics)
    : cm_(cm), hub_(hub), fs_(fs), dramMeta_(dramMeta), dram_(dram),
      ownedMetrics_(metrics != nullptr
                        ? nullptr
                        : std::make_unique<sim::MetricsRegistry>()),
      metrics_(metrics != nullptr ? metrics : ownedMetrics_.get()),
      stats_(*metrics_)
{
    fs_.addHooks(this);

    sim::MetricsScope scope(*metrics_, "vm");
    counters_.mmap = scope.counter("mmap");
    counters_.munmap = scope.counter("munmap");
    counters_.mprotect = scope.counter("mprotect");
    counters_.forks = scope.counter("forks");
    counters_.mremap = scope.counter("mremap");
    counters_.mremapMoves = scope.counter("mremap_moves");
    counters_.msyncNoop = scope.counter("msync_noop");
    counters_.dirtyTags = scope.counter("dirty_tags");
    counters_.syncWholeFile = scope.counter("sync_whole_file");
    counters_.syncFlushedPages = scope.counter("sync_flushed_pages");
    counters_.syncs = scope.counter("syncs");
    counters_.truncateZaps = scope.counter("truncate_zaps");
    counters_.majorFaults = scope.counter("major_faults");
    counters_.faults = scope.counter("faults");
    counters_.daxvmWpFaults = scope.counter("daxvm_wp_faults");
    counters_.wpFaults = scope.counter("wp_faults");
    counters_.populates = scope.counter("populates");
    counters_.faultNs = scope.histogram("fault_ns");

    // mmap_sem contention and MMU perf are per-process; the gauges
    // publish the sum over live address spaces plus everything
    // deposited by already-destroyed ones (unregisterSpace).
    auto rdAcq = metrics_->gauge("vm.mmap_sem.read_acquisitions");
    auto rdWait = metrics_->gauge("vm.mmap_sem.read_wait_ns");
    auto rdHeld = metrics_->gauge("vm.mmap_sem.read_held_ns");
    auto wrAcq = metrics_->gauge("vm.mmap_sem.write_acquisitions");
    auto wrWait = metrics_->gauge("vm.mmap_sem.write_wait_ns");
    auto wrHeld = metrics_->gauge("vm.mmap_sem.write_held_ns");
    auto tlbHits = metrics_->gauge("arch.mmu.tlb_hits");
    auto tlbMisses = metrics_->gauge("arch.mmu.tlb_misses");
    auto walkNs = metrics_->gauge("arch.mmu.walk_ns");
    auto execNs = metrics_->gauge("arch.mmu.exec_ns");
    metrics_->addCollector([this, rdAcq, rdWait, rdHeld, wrAcq, wrWait,
                            wrHeld, tlbHits, tlbMisses, walkNs,
                            execNs]() mutable {
        sim::LockStats rd = retiredSemRead_;
        sim::LockStats wr = retiredSemWrite_;
        arch::MmuPerf perf = retiredPerf_;
        sim::Time exec = retiredExecNs_;
        for (AddressSpace *as : spaces_) {
            const sim::LockStats &r = as->mmapSem().readStats();
            const sim::LockStats &w = as->mmapSem().writeStats();
            rd.acquisitions += r.acquisitions;
            rd.waitNs += r.waitNs;
            rd.heldNs += r.heldNs;
            wr.acquisitions += w.acquisitions;
            wr.waitNs += w.waitNs;
            wr.heldNs += w.heldNs;
            perf += as->perf();
            exec += as->execNs();
        }
        rdAcq.set(static_cast<double>(rd.acquisitions));
        rdWait.set(static_cast<double>(rd.waitNs));
        rdHeld.set(static_cast<double>(rd.heldNs));
        wrAcq.set(static_cast<double>(wr.acquisitions));
        wrWait.set(static_cast<double>(wr.waitNs));
        wrHeld.set(static_cast<double>(wr.heldNs));
        tlbHits.set(static_cast<double>(perf.tlbHits));
        tlbMisses.set(static_cast<double>(perf.tlbMisses));
        walkNs.set(static_cast<double>(perf.walkNs));
        execNs.set(static_cast<double>(exec));
    });
}

VmManager::~VmManager()
{
    fs_.removeHooks(this);
}

void
VmManager::unregisterSpace(AddressSpace *as)
{
    if (spaces_.erase(as) == 0)
        return;
    const sim::LockStats &r = as->mmapSem().readStats();
    const sim::LockStats &w = as->mmapSem().writeStats();
    retiredSemRead_.acquisitions += r.acquisitions;
    retiredSemRead_.waitNs += r.waitNs;
    retiredSemRead_.heldNs += r.heldNs;
    retiredSemWrite_.acquisitions += w.acquisitions;
    retiredSemWrite_.waitNs += w.waitNs;
    retiredSemWrite_.heldNs += w.heldNs;
    retiredPerf_ += as->perf();
    retiredExecNs_ += as->execNs();
}

void
dirtySetInsert(DirtySet &set, std::uint64_t start, std::uint64_t count)
{
    if (count == 0)
        return;
    std::uint64_t end = start + count;

    // Merge with any overlapping/adjacent predecessor.
    auto it = set.upper_bound(start);
    if (it != set.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second >= start) {
            start = prev->first;
            end = std::max(end, prev->first + prev->second);
            it = set.erase(prev);
        }
    }
    // Swallow successors.
    while (it != set.end() && it->first <= end) {
        end = std::max(end, it->first + it->second);
        it = set.erase(it);
    }
    set.emplace(start, end - start);
}

void
VmManager::registerMapping(fs::Ino ino, AddressSpace *as,
                           std::uint64_t vmaStart)
{
    inodeVm(ino).mappings.push_back({as, vmaStart});
}

void
VmManager::unregisterMapping(fs::Ino ino, AddressSpace *as,
                             std::uint64_t vmaStart)
{
    auto it = inodeVm_.find(ino);
    if (it == inodeVm_.end())
        return;
    auto &mappings = it->second.mappings;
    mappings.erase(
        std::remove_if(mappings.begin(), mappings.end(),
                       [&](const MappingRef &r) {
                           return r.as == as && r.vmaStart == vmaStart;
                       }),
        mappings.end());
}

const std::vector<VmManager::MappingRef> &
VmManager::mappingsOf(fs::Ino ino) const
{
    auto it = inodeVm_.find(ino);
    return it == inodeVm_.end() ? kNoMappings : it->second.mappings;
}

void
VmManager::markDirty(sim::Cpu &cpu, fs::Ino ino, std::uint64_t startPage,
                     std::uint64_t count)
{
    cpu.advance(cm_.dirtyTag);
    dirtySetInsert(inodeVm(ino).dirty, startPage, count);
    counters_.dirtyTags.addAt(cpu.coreId());
}

const DirtySet &
VmManager::dirtyOf(fs::Ino ino) const
{
    auto it = inodeVm_.find(ino);
    return it == inodeVm_.end() ? kNoDirty : it->second.dirty;
}

std::uint64_t
VmManager::dirtyPages(fs::Ino ino) const
{
    std::uint64_t total = 0;
    for (const auto &[start, count] : dirtyOf(ino)) {
        (void)start;
        total += count;
    }
    return total;
}

void
VmManager::syncFile(sim::Cpu &cpu, fs::Ino ino, std::uint64_t off,
                    std::uint64_t len)
{
    DAX_SPAN(sim::TraceCat::Mmap, cpu, "sync_file");
    fs::Inode &node = fs_.inode(ino);
    auto &iv = inodeVm(ino);

    // POSIX/DaxVM coexistence (paper Section IV-D): when a nosync
    // DaxVM mapping of the same file exists, its writes are invisible
    // to dirty tracking, so the POSIX syncer must flush the whole file.
    bool flushWhole = false;
    for (const auto &ref : iv.mappings) {
        if (Vma *vma = ref.as->findVma(ref.vmaStart)) {
            if (vma->daxvm && (vma->flags & kMapNoMsync) != 0)
                flushWhole = true;
        }
    }

    std::uint64_t firstPage = off / fs::kBlockSize;
    std::uint64_t endPage =
        (off + len + fs::kBlockSize - 1) / fs::kBlockSize;
    if (flushWhole) {
        firstPage = 0;
        endPage = node.sizeBlocks();
        // Flush the entire file's cache lines, not just tagged pages.
        for (const auto &[fb, extent] : node.extents) {
            (void)fb;
            fs_.device().write(cpu, fs_.blockAddr(extent.block),
                               extent.bytes(), mem::WriteMode::CachedFlush,
                               mem::Pattern::Seq);
            // Functional write-back: dirty lines become durable.
            fs_.device().flushRange(fs_.blockAddr(extent.block),
                                    extent.bytes());
        }
        counters_.syncWholeFile.addAt(cpu.coreId());
    }

    // Flush dirty intervals in range and collect pages to re-protect.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> flushed;
    for (auto it = iv.dirty.begin(); it != iv.dirty.end();) {
        const std::uint64_t start = it->first;
        const std::uint64_t count = it->second;
        if (start >= endPage || start + count <= firstPage) {
            ++it;
            continue;
        }
        const std::uint64_t s = std::max(start, firstPage);
        const std::uint64_t e = std::min(start + count, endPage);
        if (!flushWhole) {
            // clwb each dirty page's lines, walking file extents.
            std::uint64_t page = s;
            while (page < e) {
                const auto run = node.find(page);
                if (!run)
                    break;
                const std::uint64_t pages =
                    std::min(e - page, run->count);
                fs_.device().write(cpu,
                                   fs_.blockAddr(run->physBlock),
                                   pages * fs::kBlockSize,
                                   mem::WriteMode::CachedFlush,
                                   mem::Pattern::Seq);
                // Functional write-back: dirty lines become durable.
                fs_.device().flushRange(fs_.blockAddr(run->physBlock),
                                        pages * fs::kBlockSize);
                page += pages;
            }
        }
        flushed.emplace_back(s, e - s);
        // Trim the interval out of the dirty set.
        it = iv.dirty.erase(it);
        if (start < s)
            iv.dirty.emplace(start, s - start);
        if (start + count > e)
            iv.dirty.emplace(e, start + count - e);
        counters_.syncFlushedPages.addAt(cpu.coreId(), e - s);
    }

    // Write-protect flushed pages in every mapping process to restart
    // dirty tracking, with shootdowns (paper Section III-A4).
    for (const auto &ref : iv.mappings) {
        AddressSpace *as = ref.as;
        Vma *vma = as->findVma(ref.vmaStart);
        if (vma == nullptr)
            continue;
        if (vma->daxvm) {
            if ((vma->flags & kMapNoMsync) != 0)
                continue; // untracked by design
            // DaxVM re-protects at the attachment level (2 MB or
            // coarser), never inside the shared file tables.
            const std::uint64_t span =
                arch::levelSpan(vma->attachLevel);
            std::vector<std::uint64_t> bases;
            for (const auto &[s, cnt] : flushed) {
                const std::uint64_t loByte = s * fs::kBlockSize;
                const std::uint64_t hiByte = (s + cnt) * fs::kBlockSize;
                for (std::uint64_t va = vma->start; va < vma->end;
                     va += span) {
                    const std::uint64_t fo = vma->fileOffsetOf(va);
                    if (fo + span <= loByte || fo >= hiByte)
                        continue;
                    if (as->pageTable().setAttachmentWritable(
                            va, vma->attachLevel, false)
                        || as->pageTable().setFlags(va, vma->attachLevel,
                                                    0,
                                                    arch::pte::kWrite)) {
                        cpu.advance(cm_.wrProtect);
                        bases.push_back(va);
                    }
                }
            }
            if (!bases.empty()) {
                hub_.shootdownFull(cpu, as->cpuMask(), as->asid());
            }
            continue;
        }
        std::vector<std::uint64_t> protPages;
        for (const auto &[s, cnt] : flushed) {
            std::uint64_t p = s;
            while (p < s + cnt) {
                const std::uint64_t fileByte = p * fs::kBlockSize;
                if (fileByte < vma->fileOff
                    || fileByte >= vma->fileOff + vma->length()) {
                    p++;
                    continue;
                }
                const std::uint64_t va =
                    vma->start + (fileByte - vma->fileOff);
                const arch::WalkResult walk =
                    as->pageTable().lookup(va);
                if (!walk.present) {
                    p++;
                    continue;
                }
                // Re-protect at the granularity the page is mapped
                // with (one PMD write for a 2 MB page).
                const std::uint64_t span = 1ULL << walk.pageShift;
                const std::uint64_t base = va / span * span;
                const int level = walk.pageShift == 21
                                      ? arch::kPmdLevel
                                  : walk.pageShift == 30
                                      ? arch::kPudLevel
                                      : arch::kPteLevel;
                if (as->pageTable().setFlags(base, level, 0,
                                             arch::pte::kWrite)) {
                    cpu.advance(cm_.wrProtect);
                    protPages.push_back(base);
                }
                const std::uint64_t nextByte =
                    vma->fileOffsetOf(base) + span;
                p = (nextByte + fs::kBlockSize - 1) / fs::kBlockSize;
            }
        }
        if (!protPages.empty()) {
            hub_.shootdownPages(cpu, as->cpuMask(), as->asid(),
                                protPages);
        }
    }

    fs_.journal().commit(cpu, ino);
    counters_.syncs.addAt(cpu.coreId());
}

void
VmManager::onBlocksAllocated(sim::Cpu &cpu, fs::Inode &inode,
                             std::uint64_t fileBlock,
                             const fs::Extent &extent)
{
    (void)cpu;
    (void)inode;
    (void)fileBlock;
    (void)extent;
}

void
VmManager::onBlocksFreeing(sim::Cpu &cpu, fs::Inode &inode,
                           std::uint64_t fileBlock,
                           const fs::Extent &extent)
{
    // Synchronously unmap reclaimed pages from every POSIX mapping
    // (DaxVM detachment is handled by the DaxVM hook).
    auto it = inodeVm_.find(inode.ino);
    if (it == inodeVm_.end())
        return;
    const std::uint64_t byteStart = fileBlock * fs::kBlockSize;
    const std::uint64_t byteEnd = byteStart + extent.bytes();
    for (const auto &ref : it->second.mappings) {
        AddressSpace *as = ref.as;
        Vma *vma = as->findVma(ref.vmaStart);
        if (vma == nullptr || vma->daxvm)
            continue;
        const std::uint64_t vmaFileEnd = vma->fileOff + vma->length();
        if (byteEnd <= vma->fileOff || byteStart >= vmaFileEnd)
            continue;
        const std::uint64_t s =
            vma->start + (std::max(byteStart, vma->fileOff)
                          - vma->fileOff);
        const std::uint64_t e =
            vma->start + (std::min(byteEnd, vmaFileEnd) - vma->fileOff);
        std::vector<std::uint64_t> pages;
        const std::uint64_t zapped = as->zapRange(cpu, *vma, s, e, pages);
        if (zapped > 0) {
            hub_.shootdownPages(cpu, as->cpuMask(), as->asid(), pages,
                                zapped);
        }
        counters_.truncateZaps.addAt(cpu.coreId(), zapped);
    }
}

void
VmManager::onInodeEvict(fs::Inode &inode)
{
    (void)inode;
}

} // namespace dax::vm
