/**
 * @file
 * Demand paging and dirty-tracking faults (Linux default DAX path).
 *
 * The cost structure follows paper Section III-A:
 *  - every first touch of a page pays trap + mmap_sem (reader) +
 *    extent lookup + PTE install;
 *  - shared-writable mappings are installed read-only so the first
 *    write pays a *second* (permission) fault that tags the page dirty
 *    in the page-cache tree;
 *  - with MAP_SYNC on ext4, making a page writable while the file has
 *    uncommitted metadata triggers a synchronous journal commit - the
 *    effect behind the aged-image YCSB collapse (Section V-C2).
 *
 * DaxVM mappings only ever take attachment-level permission faults
 * (2 MB dirty granularity) and none at all in nosync mode.
 */
#include <stdexcept>

#include "arch/pte.h"
#include "sim/trace.h"
#include "vm/address_space.h"

namespace dax::vm {

namespace {

/** Is this 2 MB file chunk backed by one aligned physical huge run? */
bool
hugeMappable(const fs::Inode &node, std::uint64_t fileOff)
{
    if (fileOff % mem::kHugePageSize != 0)
        return false;
    const std::uint64_t fileBlock = fileOff / fs::kBlockSize;
    const auto run = node.find(fileBlock);
    if (!run)
        return false;
    if (run->count < fs::kBlocksPerHuge)
        return false;
    return run->physBlock % fs::kBlocksPerHuge == 0;
}

} // namespace

void
AddressSpace::makeWritable(sim::Cpu &cpu, Vma &vma, std::uint64_t va,
                           unsigned pageShift)
{
    DAX_SPAN(sim::TraceCat::Fault, cpu, "wp_upgrade");
    const std::uint64_t span = 1ULL << pageShift;
    const std::uint64_t base = va / span * span;
    const int level = pageShift == 21   ? arch::kPmdLevel
                      : pageShift == 30 ? arch::kPudLevel
                                        : arch::kPteLevel;

    // First write into fallocate'd blocks converts them from the
    // "unwritten" state - a metadata change.
    fs::Inode &node = vmm_.fs().inode(vma.ino);
    const std::uint64_t blockBase =
        vma.fileOffsetOf(base) / fs::kBlockSize;
    if (fs::intervalErase(node.unwritten, blockBase,
                          span / fs::kBlockSize)
        > 0) {
        vmm_.fs().journal().markDirty(vma.ino);
    }

    // MAP_SYNC: metadata must be durable before user-space can write
    // through the mapping (synchronous commit on ext4; NOVA commits
    // in place, so this is effectively free there).
    if ((vma.flags & kMapSync) != 0)
        vmm_.fs().journal().commit(cpu, vma.ino);

    pt_.setFlags(base, level, arch::pte::kWrite | arch::pte::kDirty
                                  | arch::pte::kSoftDirtyTracked,
                 0);
    // Tag the whole mapped granule dirty in the page-cache tree.
    const std::uint64_t filePage =
        vma.fileOffsetOf(base) / fs::kBlockSize;
    vmm_.markDirty(cpu, vma.ino, filePage, span / fs::kBlockSize);

    // The local TLB may cache the read-only translation.
    vmm_.hub().mmu(cpu.coreId()).tlb().invalidatePage(base, asid_);
}

bool
AddressSpace::installTranslation(sim::Cpu &cpu, Vma &vma, std::uint64_t va,
                                 bool forWrite, bool trapped)
{
    fs::Inode &node = vmm_.fs().inode(vma.ino);
    const std::uint64_t fileOff = vma.fileOffsetOf(va);
    if (fileOff >= node.size) {
        return false; // SIGBUS: access beyond EOF
    }
    {
        DAX_SPAN(sim::TraceCat::Fault, cpu, "pt_walk");
        vmm_.fs().chargeExtentLookup(cpu, node);
    }

    // Prefer a 2 MB mapping when file offset, virtual address and the
    // backing extent all line up (fragmentation breaks this on aged
    // images - paper Section III-C).
    const std::uint64_t hugeOff =
        fileOff / mem::kHugePageSize * mem::kHugePageSize;
    const std::uint64_t hugeVa =
        va / mem::kHugePageSize * mem::kHugePageSize;
    const bool vaAligned =
        va % mem::kHugePageSize == fileOff % mem::kHugePageSize;
    bool asHuge = false;
    if (vmm_.hugePagesEnabled() && vaAligned && hugeVa >= vma.start
        && hugeVa + mem::kHugePageSize <= vma.end
        && hugeMappable(node, hugeOff)
        && hugeOff + mem::kHugePageSize <= node.size) {
        asHuge = true;
    }

    const std::uint64_t base = asHuge ? hugeVa
                                      : va / mem::kPageSize
                                            * mem::kPageSize;
    const std::uint64_t baseOff = vma.fileOffsetOf(base);
    const auto run = node.find(baseOff / fs::kBlockSize);
    if (!run)
        return false; // hole: DAX files are fully allocated
    const std::uint64_t pa =
        vmm_.fs().blockAddr(run->physBlock);

    // Shared-writable mappings start read-only for dirty tracking;
    // everything else gets its VMA permission directly.
    const bool tracked = vma.writable && (vma.flags & kMapNoMsync) == 0;
    arch::Pte flags = 0;
    if (vma.writable && !tracked)
        flags |= arch::pte::kWrite;

    const int level = asHuge ? arch::kPmdLevel : arch::kPteLevel;
    {
        DAX_SPAN(sim::TraceCat::Fault, cpu, "frame_alloc");
        const unsigned newPages = pt_.map(base, pa, level, flags);
        cpu.advance(vmm_.cm().ptPageAlloc * newPages);
        cpu.advance(asHuge ? vmm_.cm().pmdSet : vmm_.cm().pteSet);
    }
    if (trapped)
        vmm_.counters().majorFaults.addAt(cpu.coreId());

    if (forWrite && tracked)
        makeWritable(cpu, vma, base, asHuge ? 21 : 12);
    return true;
}

bool
AddressSpace::handleFault(sim::Cpu &cpu, std::uint64_t va, bool write)
{
    const sim::Time faultBegin = cpu.now();
    DAX_SPAN(sim::TraceCat::Fault, cpu, "fault");
    cpu.advance(vmm_.cm().faultEntry);
    noteCore(cpu.coreId());
    vmm_.counters().faults.addAt(cpu.coreId());
    DAX_TRACE(sim::TraceCat::Fault, cpu, "%s va=0x%llx core=%d",
              write ? "write" : "read", (unsigned long long)va,
              cpu.coreId());

    sim::ScopedReadLock guard(mmapSem_, cpu);
    Vma *vma = findVma(va);
    if (vma == nullptr || (write && !vma->writable))
        return false; // SIGSEGV

    const arch::WalkResult walk = pt_.lookup(va);
    if (!walk.present) {
        const bool ok =
            installTranslation(cpu, *vma, va, write, /*trapped=*/true);
        vmm_.counters().faultNs.recordAt(cpu.coreId(),
                                         cpu.now() - faultBegin);
        return ok;
    }

    if (write && !walk.writable) {
        if (vma->daxvm) {
            // DaxVM attachment-level permission fault: dirty tracking
            // at 2 MB (or coarser) granularity (Section IV-D).
            DAX_SPAN(sim::TraceCat::Fault, cpu, "wp_upgrade");
            const int level = vma->attachLevel >= 0 ? vma->attachLevel
                                                    : arch::kPmdLevel;
            const std::uint64_t span = arch::levelSpan(level);
            const std::uint64_t base = va / span * span;
            fs::Inode &node = vmm_.fs().inode(vma->ino);
            if (fs::intervalErase(node.unwritten,
                                  vma->fileOffsetOf(base)
                                      / fs::kBlockSize,
                                  span / fs::kBlockSize)
                > 0) {
                vmm_.fs().journal().markDirty(vma->ino);
            }
            if ((vma->flags & kMapSync) != 0)
                vmm_.fs().journal().commit(cpu, vma->ino);
            // Attached nodes carry per-process rights on the
            // attachment entry; huge chunks installed directly in the
            // private tree upgrade their own PMD entry.
            if (!pt_.setAttachmentWritable(base, level, true)) {
                pt_.setFlags(base, level,
                             arch::pte::kWrite | arch::pte::kDirty, 0);
            }
            const std::uint64_t filePage =
                vma->fileOffsetOf(base) / fs::kBlockSize;
            vmm_.markDirty(cpu, vma->ino, filePage,
                           span / fs::kBlockSize);
            vmm_.hub().mmu(cpu.coreId()).tlb().invalidatePage(va, asid_);
            vmm_.counters().daxvmWpFaults.addAt(cpu.coreId());
            vmm_.counters().faultNs.recordAt(cpu.coreId(),
                                             cpu.now() - faultBegin);
            return true;
        }
        makeWritable(cpu, *vma, va, walk.pageShift);
        vmm_.counters().wpFaults.addAt(cpu.coreId());
        vmm_.counters().faultNs.recordAt(cpu.coreId(),
                                         cpu.now() - faultBegin);
        return true;
    }

    // Stale TLB entry (e.g. entry cached before a permission upgrade):
    // the walk already satisfies the access; refresh and retry.
    vmm_.hub().mmu(cpu.coreId()).tlb().invalidatePage(va, asid_);
    return true;
}

void
AddressSpace::populateRange(sim::Cpu &cpu, Vma &vma, std::uint64_t off,
                            std::uint64_t len, bool forWrite)
{
    const std::uint64_t end = std::min(vma.start + off + len, vma.end);
    std::uint64_t va = vma.start + off;
    fs::Inode &node = vmm_.fs().inode(vma.ino);
    while (va < end) {
        if (vma.fileOffsetOf(va) >= node.size)
            break;
        const arch::WalkResult walk = pt_.lookup(va);
        if (walk.present) {
            va = (va / mem::kPageSize + 1) * mem::kPageSize;
            continue;
        }
        if (!installTranslation(cpu, vma, va, forWrite,
                                /*trapped=*/false)) {
            break;
        }
        const arch::WalkResult now = pt_.lookup(va);
        const std::uint64_t span =
            now.present ? (1ULL << now.pageShift) : mem::kPageSize;
        va = va / span * span + span;
    }
    vmm_.counters().populates.addAt(cpu.coreId());
}

} // namespace dax::vm
