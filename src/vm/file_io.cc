/**
 * @file
 * User-side file IO helpers.
 */
#include "vm/file_io.h"

namespace dax::vm {

void
processCached(sim::Cpu &cpu, const sim::CostModel &cm, std::uint64_t bytes)
{
    cpu.advance(sim::CostModel::xfer(bytes, cm.dramReadBwCore));
}

void
chargeCompute(sim::Cpu &cpu, double nsPerByte, std::uint64_t bytes)
{
    cpu.advance(static_cast<sim::Time>(
        nsPerByte * static_cast<double>(bytes) + 0.5));
}

std::uint64_t
readAndProcess(sim::Cpu &cpu, fs::FileSystem &fs, const sim::CostModel &cm,
               fs::Ino ino, std::uint64_t off, std::uint64_t len, void *buf)
{
    const std::uint64_t got = fs.read(cpu, ino, off, buf, len);
    processCached(cpu, cm, got);
    return got;
}

} // namespace dax::vm
