/**
 * @file
 * Per-process virtual address space: the simulated mm_struct.
 *
 * Owns the VMA tree (protected by the mmap semaphore, as in Linux),
 * the process page table, and - when DaxVM is used - the ephemeral
 * heap region whose VMAs live outside the main tree under their own
 * spinlock (paper Section IV-B).
 *
 * The POSIX paths (mmap/munmap/mprotect/msync, demand faults with
 * software dirty tracking, MAP_POPULATE, TLB flush batching with the
 * 33-page threshold) model Linux 5.1 behaviour; DaxVM paths are built
 * on the exposed internals by src/daxvm.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "arch/page_table.h"
#include "arch/perf.h"
#include "arch/shootdown.h"
#include "mem/device.h"
#include "sim/locks.h"
#include "vm/manager.h"
#include "vm/vma.h"

namespace dax::vm {

class AddressSpace
{
  public:
    explicit AddressSpace(VmManager &vmm);
    ~AddressSpace();

    AddressSpace(const AddressSpace &) = delete;
    AddressSpace &operator=(const AddressSpace &) = delete;

    // ------------------------------------------------------------------
    // POSIX mapping API (Linux default DAX-mmap behaviour)
    // ------------------------------------------------------------------

    /**
     * Map @p len bytes of @p ino at file offset @p off.
     * @return the mapped virtual address, or 0 on failure.
     */
    std::uint64_t mmap(sim::Cpu &cpu, fs::Ino ino, std::uint64_t off,
                       std::uint64_t len, bool write, unsigned flags);

    /** Unmap [va, va+len); splits partially covered VMAs. */
    bool munmap(sim::Cpu &cpu, std::uint64_t va, std::uint64_t len);

    /** Change protection of [va, va+len); splits VMAs as needed. */
    bool mprotect(sim::Cpu &cpu, std::uint64_t va, std::uint64_t len,
                  bool write);

    /** Sync the file range backing [va, va+len). */
    bool msync(sim::Cpu &cpu, std::uint64_t va, std::uint64_t len);

    /**
     * fork(): duplicate this address space into a child process.
     * Shared file mappings are copied entry by entry (Linux copies
     * page tables under the parent's mmap_sem); DaxVM mappings are
     * re-attached - O(1) per granule through the shared file tables,
     * which is why fork is cheap for DAX with DaxVM. Ephemeral
     * mappings are transient by contract and are not inherited.
     */
    std::unique_ptr<AddressSpace> fork(sim::Cpu &cpu);

    /**
     * Resize (possibly moving) the mapping starting at @p oldVa.
     * DaxVM mappings allow resizing only of the entire mapping;
     * ephemeral mappings reject mremap (paper Section IV-F).
     * @return the (possibly new) address, or 0 on failure.
     */
    std::uint64_t mremap(sim::Cpu &cpu, std::uint64_t oldVa,
                         std::uint64_t oldLen, std::uint64_t newLen);

    // ------------------------------------------------------------------
    // Memory access through the MMU (timed + functional)
    // ------------------------------------------------------------------

    /**
     * Load @p len bytes at @p va (optionally copied into @p dst).
     * @param kernelCopy the access is a kernel copy through the user
     *        mapping (e.g. write(socket, mapped, len)): no AVX-512.
     */
    void memRead(sim::Cpu &cpu, std::uint64_t va, std::uint64_t len,
                 mem::Pattern pattern, void *dst = nullptr,
                 bool kernelCopy = false);

    /** Store @p len bytes at @p va. */
    void memWrite(sim::Cpu &cpu, std::uint64_t va, std::uint64_t len,
                  mem::Pattern pattern,
                  mem::WriteMode mode = mem::WriteMode::NtStore,
                  const void *src = nullptr);

    // ------------------------------------------------------------------
    // Fault handling (used internally and by tests)
    // ------------------------------------------------------------------

    /**
     * Page/permission fault on @p va.
     * @return true when resolved (access should retry).
     */
    bool handleFault(sim::Cpu &cpu, std::uint64_t va, bool write);

    /**
     * Populate translations for [vma.start+off, +len) without a trap
     * per page (MAP_POPULATE / DaxVM-independent helper). Caller holds
     * the mmap semaphore as reader.
     */
    void populateRange(sim::Cpu &cpu, Vma &vma, std::uint64_t off,
                       std::uint64_t len, bool forWrite);

    // ------------------------------------------------------------------
    // Internals exposed to the DaxVM module
    // ------------------------------------------------------------------

    /** Ephemeral heap region state (paper Fig. 3). */
    struct EphemeralRegion
    {
        std::uint64_t base = 0;
        std::uint64_t size = 0;
        std::uint64_t bump = 0;       ///< next free offset
        std::uint64_t liveVmas = 0;   ///< mappings in the region
        sim::Mutex lock{"ephemeral"};
        std::map<std::uint64_t, Vma> vmas;
    };

    /** Reserve (or grow) the ephemeral heap; returns the region. */
    EphemeralRegion &ephemeralRegion();

    /** Bump-allocate virtual addresses (no locking, no charging). */
    std::uint64_t allocVaBump(std::uint64_t len, std::uint64_t align);

    /** Insert a VMA into the main tree (caller holds write lock). */
    Vma &insertVma(const Vma &vma);

    /** Find the VMA containing @p va (ephemeral region checked too). */
    Vma *findVma(std::uint64_t va);

    /** Erase a tree VMA by start (caller holds write lock). */
    bool eraseVma(std::uint64_t start);

    /**
     * Clear all present translations in [start, end) of @p vma,
     * collecting up to threshold+1 page addresses for the TLB flush
     * decision. @return number of pages zapped (@p pages truncated).
     */
    std::uint64_t zapRange(sim::Cpu &cpu, Vma &vma, std::uint64_t start,
                           std::uint64_t end,
                           std::vector<std::uint64_t> &pages);

    /** Record that @p core touched this address space (mm_cpumask). */
    void noteCore(int core) { cpuMask_ |= arch::coreBit(core); }

    arch::CoreMask cpuMask() const { return cpuMask_; }
    arch::Asid asid() const { return asid_; }
    arch::PageTable &pageTable() { return pt_; }
    const arch::PageTable &pageTable() const { return pt_; }
    sim::RwSemaphore &mmapSem() { return mmapSem_; }
    VmManager &vmm() { return vmm_; }
    arch::MmuPerf &perf() { return perf_; }
    const std::map<std::uint64_t, Vma> &vmas() const { return vmas_; }

    /** Ephemeral region state without reserving it (checkers). */
    const EphemeralRegion &ephemeral() const { return ephemeral_; }

    /** Execution-time accumulator for the MMU-overhead monitor. */
    void chargeExec(sim::Time ns) { execNs_ += ns; }
    sim::Time execNs() const { return execNs_; }

    /** Host-side VMA-cache diagnostics (tests; not in metrics). */
    std::uint64_t vmaCacheHits() const { return vmaCacheHits_; }
    /** Generation of the main VMA tree (bumps on any mutation). */
    std::uint64_t vmaGeneration() const { return vmaGen_; }

  private:
    friend class Access;

    /** Resolve + install the translation for one fault. */
    bool installTranslation(sim::Cpu &cpu, Vma &vma, std::uint64_t va,
                            bool forWrite, bool trapped);

    /** Make an installed page writable (dirty tracking + MAP_SYNC). */
    void makeWritable(sim::Cpu &cpu, Vma &vma, std::uint64_t va,
                      unsigned pageShift);

    VmManager &vmm_;
    arch::Asid asid_;
    arch::PageTable pt_;
    sim::RwSemaphore mmapSem_;
    std::map<std::uint64_t, Vma> vmas_; ///< keyed by start
    /**
     * Linux-vmacache analog: the last VMA findVma() returned, valid
     * only while vmaGen_ is unchanged (every tree mutation bumps it,
     * so a cached pointer can never dangle past an erase). Host-only:
     * hits charge nothing and change no simulated state.
     */
    Vma *vmaCache_ = nullptr;
    std::uint64_t vmaCacheGen_ = 0;
    std::uint64_t vmaGen_ = 0;
    std::uint64_t vmaCacheHits_ = 0;
    bool fastPaths_;
    EphemeralRegion ephemeral_;
    std::uint64_t vaBump_;
    arch::CoreMask cpuMask_ = 0;
    arch::MmuPerf perf_;
    sim::Time execNs_ = 0;
};

} // namespace dax::vm
