/**
 * @file
 * The memory-access engine: every load/store a workload performs on a
 * mapping goes through the per-core MMU (TLB + walker), takes demand
 * or permission faults as needed, and charges device time for the data
 * itself. Functionally, bytes are copied to/from the backing device so
 * data integrity is testable end to end.
 */
#include <algorithm>
#include <stdexcept>

#include "sim/trace.h"
#include "vm/address_space.h"

namespace dax::vm {

namespace {

struct Chunk
{
    std::uint64_t paddr;
    std::uint64_t len;
    bool dram;
};

} // namespace

void
AddressSpace::memRead(sim::Cpu &cpu, std::uint64_t va, std::uint64_t len,
                      mem::Pattern pattern, void *dst, bool kernelCopy)
{
    DAX_SPAN(sim::TraceCat::Fault, cpu, "mem_read");
    vmm_.hub().drainDisruption(cpu);
    noteCore(cpu.coreId());
    const sim::Time begin = cpu.now();
    arch::Mmu &mmu = vmm_.hub().mmu(cpu.coreId());

    std::uint64_t done = 0;
    bool first = true;
    int mceRetries = 0;
    while (done < len) {
        const std::uint64_t addr = va + done;
        arch::Mmu::Result r;
        int attempts = 0;
        for (;;) {
            r = mmu.translate(cpu, pt_, addr, /*write=*/false, asid_,
                              perf_);
            if (r.outcome == arch::Mmu::Outcome::Ok)
                break;
            if (++attempts > 3)
                throw std::runtime_error("unresolvable read fault");
            if (!handleFault(cpu, addr, /*write=*/false))
                throw std::runtime_error("SIGSEGV on read");
        }
        const std::uint64_t pageEnd =
            (addr >> r.pageShift << r.pageShift)
            + (1ULL << r.pageShift);
        const std::uint64_t chunk =
            std::min(len - done, pageEnd - addr);
        mem::Device &dev = r.dram ? vmm_.dram() : vmm_.fs().device();
        const mem::Pattern p =
            first ? pattern : mem::Pattern::Seq;
        try {
            if (kernelCopy)
                dev.readKernel(cpu, r.paddr, chunk, p);
            else
                dev.read(cpu, r.paddr, chunk, p);
            if (dst != nullptr) {
                dev.fetch(r.paddr,
                          static_cast<std::uint8_t *>(dst) + done, chunk);
            }
        } catch (const mem::MachineCheckException &mc) {
            // Synchronous #MC on a DAX load. The kernel handler either
            // repairs the backing block (remap policies tear down this
            // translation through the remap hooks, so the retry
            // re-faults onto the replacement) or delivers SIGBUS
            // (BUS_MCEERR_AR) to this thread. The retry bound keeps a
            // pathological poison stream from looping forever.
            cpu.advance(vmm_.cm().mceHandle);
            DAX_TRACE(sim::TraceCat::Fault, cpu,
                      "mce va=0x%llx pa=0x%llx",
                      static_cast<unsigned long long>(addr),
                      static_cast<unsigned long long>(mc.addr()));
            if (!vmm_.fs().handlePoison(cpu, mc.addr())
                || ++mceRetries > 8) {
                vmm_.noteMceSigbus();
                execNs_ += cpu.now() - begin;
                throw SigBusException(addr, mc.addr());
            }
            continue; // re-translate: the page was remapped
        }
        first = false;
        done += chunk;
    }
    execNs_ += cpu.now() - begin;
}

void
AddressSpace::memWrite(sim::Cpu &cpu, std::uint64_t va, std::uint64_t len,
                       mem::Pattern pattern, mem::WriteMode mode,
                       const void *src)
{
    DAX_SPAN(sim::TraceCat::Fault, cpu, "mem_write");
    vmm_.hub().drainDisruption(cpu);
    noteCore(cpu.coreId());
    const sim::Time begin = cpu.now();
    arch::Mmu &mmu = vmm_.hub().mmu(cpu.coreId());

    std::uint64_t done = 0;
    bool first = true;
    while (done < len) {
        const std::uint64_t addr = va + done;
        arch::Mmu::Result r;
        int attempts = 0;
        for (;;) {
            r = mmu.translate(cpu, pt_, addr, /*write=*/true, asid_,
                              perf_);
            if (r.outcome == arch::Mmu::Outcome::Ok)
                break;
            if (++attempts > 5)
                throw std::runtime_error("unresolvable write fault");
            if (!handleFault(cpu, addr, /*write=*/true))
                throw std::runtime_error("SIGSEGV on write");
        }
        const std::uint64_t pageEnd =
            (addr >> r.pageShift << r.pageShift)
            + (1ULL << r.pageShift);
        const std::uint64_t chunk =
            std::min(len - done, pageEnd - addr);
        mem::Device &dev = r.dram ? vmm_.dram() : vmm_.fs().device();
        const mem::Pattern p = first ? pattern : mem::Pattern::Seq;
        dev.write(cpu, r.paddr, chunk, mode, p);
        if (src != nullptr) {
            // The write mode decides the persistence domain: Cached
            // stores sit in the (volatile) cache until flushed.
            dev.store(r.paddr,
                      static_cast<const std::uint8_t *>(src) + done,
                      chunk, mode);
        }
        first = false;
        done += chunk;
    }
    execNs_ += cpu.now() - begin;
}

} // namespace dax::vm
