/**
 * @file
 * System assembly.
 */
#include "sys/system.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/check.h"
#include "sim/trace.h"

namespace dax::sys {

namespace {

/**
 * Apply the DAXVM_ALLOC environment knob: a comma-separated list of
 * allocator-policy tokens ("first-fit" | "segregated" for the block
 * allocator, "lifo" | "buddy" for the frame allocators). The knob
 * overrides the SystemConfig defaults so check_sweep and CI can sweep
 * every policy without touching bench code (docs/performance.md).
 */
void
applyAllocEnv(fs::AllocPolicy &block, mem::FramePolicy &frame)
{
    const char *env = std::getenv("DAXVM_ALLOC");
    if (env == nullptr)
        return;
    const std::string spec(env);
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string tok =
            spec.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        if (tok == "first-fit")
            block = fs::AllocPolicy::FirstFit;
        else if (tok == "segregated")
            block = fs::AllocPolicy::Segregated;
        else if (tok == "lifo")
            frame = mem::FramePolicy::Lifo;
        else if (tok == "buddy")
            frame = mem::FramePolicy::Buddy;
        else if (!tok.empty())
            throw std::invalid_argument(
                "DAXVM_ALLOC: unknown policy '" + tok + "'");
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
}

fs::AllocPolicy
resolveBlockPolicy(const SystemConfig &config)
{
    fs::AllocPolicy block = config.blockAllocPolicy;
    mem::FramePolicy frame = config.framePolicy;
    applyAllocEnv(block, frame);
    return block;
}

mem::FramePolicy
resolveFramePolicy(const SystemConfig &config)
{
    fs::AllocPolicy block = config.blockAllocPolicy;
    mem::FramePolicy frame = config.framePolicy;
    applyAllocEnv(block, frame);
    return frame;
}

} // namespace

System::System(const SystemConfig &config)
    : config_(config), metrics_(config.cores), engine_(config.cores),
      pmem_(mem::Kind::Pmem, config.pmemBytes + config.pmemTableBytes,
            config_.cm, config.backing == mem::Backing::None
                            ? mem::Backing::Sparse
                            : config.backing),
      dram_(mem::Kind::Dram, config.dramBytes, config_.cm,
            mem::Backing::Sparse),
      dramMeta_(dram_, 0, config.dramBytes, resolveFramePolicy(config)),
      pmemTables_(pmem_, config.pmemBytes, config.pmemTableBytes,
                  resolveFramePolicy(config)),
      hub_(config_.cm, config.cores, &metrics_),
      fs_(config.personality, pmem_, 0, config.pmemBytes, config_.cm,
          &metrics_, resolveBlockPolicy(config)),
      vfs_(fs_, config_.cm, config.inodeCacheCapacity)
{
    pmem_.bindMetrics(metrics_, "mem.pmem");
    dram_.bindMetrics(metrics_, "mem.dram");
    fs_.setMediaPolicy(config.mediaPolicy);
    // Mirror the resolved allocator policies (config or DAXVM_ALLOC)
    // so config() introspection reports what is actually running.
    config_.blockAllocPolicy = fs_.allocator().policy();
    config_.framePolicy = dramMeta_.policy();
    bool fastPaths = config.hostFastPaths;
    if (const char *env = std::getenv("DAXVM_HOST_FAST")) {
        if (std::atoi(env) == 0)
            fastPaths = false;
    }
    config_.hostFastPaths = fastPaths;
    // Parallel engine knob (docs/engine.md). A System is one shared
    // isolation domain, so any thread count is bit-identical; the
    // epoch machinery still runs when > 1 (exercised by
    // check_sweep --threads and the TSan CI job).
    unsigned simThreads = config.simThreads;
    if (simThreads == 0) {
        if (const char *env = std::getenv("DAXVM_SIM_THREADS"))
            simThreads = static_cast<unsigned>(
                std::max(0, std::atoi(env)));
        if (simThreads == 0)
            simThreads = 1;
    }
    config_.simThreads = simThreads;
    sim::Time lookahead = config.simLookaheadNs;
    if (lookahead == 0)
        lookahead = config_.cm.crossShardLookahead();
    config_.simLookaheadNs = lookahead;
    engine_.setParallelism(simThreads, lookahead);
    for (unsigned c = 0; c < config.cores; c++) {
        mmus_.push_back(std::make_unique<arch::Mmu>(config_.cm,
                                                    fastPaths));
        hub_.registerMmu(static_cast<int>(c), mmus_.back().get());
    }
    vmm_ = std::make_unique<vm::VmManager>(config_.cm, hub_, fs_,
                                           dramMeta_, dram_, &metrics_);
    vmm_->setHostFastPaths(fastPaths);
    if (config.daxvm) {
        ftm_ = std::make_unique<daxvm::FileTableManager>(
            fs_, dramMeta_, pmemTables_, config_.cm);
        dax_ = std::make_unique<daxvm::DaxVm>(*vmm_, *ftm_);
        if (config.prezero) {
            prezero_ = std::make_unique<daxvm::PrezeroDaemon>(
                fs_, config_.cm, config_.cm.prezeroThrottle,
                config.cores);
            fs_.allocator().setPrezeroSink(prezero_.get());
            auto *daemon = prezero_.get();
            const int tid = engine_.addDaemon(
                std::make_unique<sim::FnTask>(
                    [daemon](sim::Cpu &cpu) { return daemon->step(cpu); },
                    "prezerod"),
                /*core=*/0);
            daemon->attachEngine(&engine_, tid);
        }
    }
    latr_ = std::make_unique<latr::Latr>(config_.cm, hub_, config.cores);

    int checkLevel = config.checkLevel;
    if (checkLevel == 0) {
        if (const char *env = std::getenv("DAXVM_CHECK"))
            checkLevel = std::atoi(env);
    }
    if (checkLevel > 0) {
        oracle_ = std::make_unique<check::Oracle>(*this, checkLevel);
        engine_.setCheckHook(oracle_.get());
        hub_.setCheckHook(oracle_.get());
        latr_->setCheckHook(oracle_.get());
        vmm_->setCheckHook(oracle_.get());
        fs_.journal().setCheckHook(oracle_.get());
    }

    // System-level samples: engine progress and the prezero daemon's
    // pool depth (the daemon itself may be disabled or absent).
    auto steps = metrics_.gauge("sim.engine.steps");
    auto pending = metrics_.gauge("daxvm.prezero.pending_blocks");
    auto zeroed = metrics_.gauge("daxvm.prezero.zeroed_blocks");
    metrics_.addCollector([this, steps, pending, zeroed]() mutable {
        steps.set(static_cast<double>(engine_.steps()));
        if (prezero_ != nullptr) {
            pending.set(
                static_cast<double>(prezero_->pendingBlocks()));
            zeroed.set(static_cast<double>(prezero_->zeroedBlocks()));
        }
    });

    // Give this System its own process id in the span trace so that
    // traces from sequential Systems (whose virtual clocks restart at
    // zero) land on distinct, internally-monotone tracks.
    sim::Trace::get().spans().attachProcess(&metrics_, "system");
}

System::~System()
{
    sim::Trace::get().spans().detachProcess(&metrics_);
    if (oracle_ != nullptr) {
        // Final leak sweep while every subsystem is still alive, then
        // detach the hooks so nothing fires into a dead oracle while
        // members destruct.
        oracle_->onCheck(sim::CheckEvent::Teardown,
                         engine_.maxThreadClock());
        engine_.setCheckHook(nullptr);
        hub_.setCheckHook(nullptr);
        latr_->setCheckHook(nullptr);
        vmm_->setCheckHook(nullptr);
        fs_.journal().setCheckHook(nullptr);
    }
    if (prezero_ != nullptr)
        fs_.allocator().setPrezeroSink(nullptr);
}

void
System::enableTimeline(const sim::MetricsTimeline::Config &cfg)
{
    timeline_ = std::make_unique<sim::MetricsTimeline>(metrics_, cfg);
}

void
System::timelineTickSlow(sim::Cpu &cpu)
{
    // Chrome counter tracks only make sense when spans are being
    // recorded; otherwise tick without a trace track.
    sim::SpanRecorder &rec = sim::Trace::get().spans();
    timeline_->tick(cpu.now(), rec.anyEnabled()
                                   ? sim::spanTrackOf(cpu)
                                   : sim::MetricsTimeline::kNoTrack);
}

std::unique_ptr<vm::AddressSpace>
System::newProcess()
{
    return std::make_unique<vm::AddressSpace>(*vmm_);
}

std::optional<fs::Vfs::OpenResult>
System::open(sim::Cpu &cpu, const std::string &path)
{
    auto res = vfs_.open(cpu, path);
    if (res && res->cold && ftm_ != nullptr)
        ftm_->onColdOpen(cpu, res->ino);
    return res;
}

std::uint8_t
System::patternByte(fs::Ino ino, std::uint64_t i)
{
    // Cheap deterministic mixing; distinct per file and position.
    const std::uint64_t x = (ino * 0x9e3779b97f4a7c15ULL) ^ (i * 2654435761ULL);
    return static_cast<std::uint8_t>(x >> 16);
}

fs::Ino
System::makeFile(const std::string &path, std::uint64_t bytes,
                 std::uint64_t fillBytes)
{
    sim::Cpu scratch(nullptr, -1, 0);
    const fs::Ino ino = fs_.create(scratch, path);
    if (bytes > 0 && !fs_.fallocateSetup(ino, bytes))
        throw std::runtime_error("makeFile: out of space: " + path);
    // Pre-existing files already carry their DaxVM tables (they were
    // built when the file was written); construct them untimed.
    if (ftm_ != nullptr && bytes > 0)
        ftm_->tables(nullptr, ino);
    if (fillBytes > 0) {
        fillBytes = std::min(fillBytes, bytes);
        std::vector<std::uint8_t> buf(
            std::min<std::uint64_t>(fillBytes, 1 << 20));
        std::uint64_t off = 0;
        while (off < fillBytes) {
            const std::uint64_t chunk =
                std::min<std::uint64_t>(buf.size(), fillBytes - off);
            for (std::uint64_t i = 0; i < chunk; i++)
                buf[i] = patternByte(ino, off + i);
            // Functional store only (setup, no timing).
            const fs::Inode &node = fs_.inode(ino);
            std::uint64_t done = 0;
            while (done < chunk) {
                const std::uint64_t fb = (off + done) / fs::kBlockSize;
                const std::uint64_t in = (off + done) % fs::kBlockSize;
                const auto run = node.find(fb);
                const std::uint64_t n = std::min(
                    chunk - done, run->count * fs::kBlockSize - in);
                pmem_.store(fs_.blockAddr(run->physBlock) + in,
                            buf.data() + done, n);
                done += n;
            }
            off += chunk;
        }
    }
    // Setup files are part of the pre-crash durable image: commit
    // their metadata (untimed) so they survive a power failure.
    fs_.journal().commit(scratch, ino);
    return ino;
}

fs::AgingReport
System::age(const fs::AgingConfig &config)
{
    // Aging is an offline image-preparation step: freed blocks must
    // return to the allocator immediately, not queue behind the
    // (not-yet-running) pre-zero daemon.
    const bool prezeroWasEnabled =
        prezero_ != nullptr && prezero_->enabled();
    if (prezero_ != nullptr)
        prezero_->setEnabled(false);
    auto report = fs::ageFileSystem(fs_, config);
    if (prezero_ != nullptr)
        prezero_->setEnabled(prezeroWasEnabled);
    return report;
}

void
System::remount()
{
    vfs_.dropCaches();
}

void
System::setFaultPlan(sim::FaultPlan *plan)
{
    pmem_.setFaultPlan(plan);
    fs_.journal().setFaultPlan(plan);
    if (ftm_ != nullptr)
        ftm_->setFaultPlan(plan);
    if (prezero_ != nullptr)
        prezero_->setFaultPlan(plan);
    // Media degradation rides the plan. Clamp the fault range to the
    // file-data region: table frames have their own failure model
    // (TableUpdate tearing) and must never be silently poisoned.
    if (plan != nullptr && plan->media() != nullptr) {
        sim::MediaSpec spec = *plan->media();
        spec.limit = std::min(spec.limit, config_.pmemBytes);
        pmem_.setMedia(&spec);
    } else {
        pmem_.setMedia(nullptr);
    }
}

CrashReport
System::crash()
{
    CrashReport report;
    // The zeroed pool's *blocks* are durable (zeroes on the medium)
    // but the pool membership is volatile: snapshot it so recover()
    // can re-verify and readmit.
    preCrashZeroed_ = fs_.allocator().zeroedExtents();
    report.dirtyLinesLost = pmem_.crash();
    dram_.crash();
    if (prezero_ != nullptr)
        report.prezeroPendingLost = prezero_->onCrash();
    // Kernel DRAM state dies with the power.
    vmm_->resetVolatile();
    vfs_.reset();
    return report;
}

RecoverReport
System::recover()
{
    RecoverReport report;
    report.fs = fs_.recover();
    if (ftm_ != nullptr)
        report.tables = ftm_->recoverAll();
    // Re-admit pre-crash zeroed extents only after re-verifying the
    // invariant against the durable medium: every block must still be
    // zero AND free under the recovered metadata.
    for (const auto &e : preCrashZeroed_) {
        if (pmem_.isZero(fs_.blockAddr(e.block), e.bytes())
            && fs_.allocator().promoteZeroed(e)) {
            report.zeroedReadmitted += e.count;
        } else {
            report.zeroedDemoted += e.count;
        }
    }
    preCrashZeroed_.clear();
    if (oracle_ != nullptr)
        oracle_->onCheck(sim::CheckEvent::Recover,
                         engine_.maxThreadClock());
    return report;
}

sim::Time
System::quiesceTime() const
{
    sim::Time t = pmem_.readChannel().busyUntil();
    t = std::max(t, pmem_.writeChannel().busyUntil());
    t = std::max(t, dram_.readChannel().busyUntil());
    t = std::max(t, dram_.writeChannel().busyUntil());
    return t;
}

} // namespace dax::sys
