/**
 * @file
 * System: assembles devices, MMUs, file system, VM layer, DaxVM and
 * baselines into one simulated machine. This is the top of the public
 * API: examples, tests and benches construct a System, create
 * processes and drive workloads on the engine.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arch/shootdown.h"
#include "arch/tlb.h"
#include "daxvm/api.h"
#include "daxvm/file_table.h"
#include "daxvm/prezero.h"
#include "fs/aging.h"
#include "fs/file_system.h"
#include "fs/vfs.h"
#include "latr/latr.h"
#include "mem/device.h"
#include "mem/frame_alloc.h"
#include "sim/cost_model.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "sim/metrics.h"
#include "vm/address_space.h"
#include "vm/manager.h"

namespace dax::check {
class Oracle;
}

namespace dax::sys {

struct SystemConfig
{
    /** Simulated cores (paper socket: 16). */
    unsigned cores = 16;
    /** PMem data region (file system) size. */
    std::uint64_t pmemBytes = 4ULL << 30;
    /** PMem region reserved for persistent DaxVM file tables. */
    std::uint64_t pmemTableBytes = 256ULL << 20;
    /** DRAM metadata region (process page tables, volatile tables). */
    std::uint64_t dramBytes = 2ULL << 30;
    mem::Backing backing = mem::Backing::Sparse;
    fs::Personality personality = fs::Personality::Ext4Dax;
    /** Instantiate the DaxVM subsystem (file tables, daxvm_mmap). */
    bool daxvm = true;
    /** Divert frees to the asynchronous pre-zero daemon. */
    bool prezero = true;
    /**
     * Free-space strategy for the data-block allocator
     * (docs/performance.md "Allocator strategies"). FirstFit keeps
     * every current bench byte-identical; Segregated gives O(1)
     * expected alloc/free on aged images (placement may differ).
     */
    fs::AllocPolicy blockAllocPolicy = fs::AllocPolicy::FirstFit;
    /**
     * Frame-recycling strategy for the metadata frame allocators
     * (DRAM page tables, PMem DaxVM file tables). Buddy keeps 2 MB
     * runs intact. The DAXVM_ALLOC environment knob overrides both
     * allocator policies: a comma-separated list of
     * "first-fit" | "segregated" (blocks) and "lifo" | "buddy"
     * (frames), e.g. DAXVM_ALLOC=segregated,buddy.
     */
    mem::FramePolicy framePolicy = mem::FramePolicy::Lifo;
    /** VFS inode cache capacity (0 = unlimited). */
    std::size_t inodeCacheCapacity = 1 << 16;
    /**
     * Degradation policy for uncorrectable media errors (see
     * docs/robustness.md): fail fast with EIO/SIGBUS, remap to a
     * zeroed frame, or remap and restore salvageable lines.
     */
    fs::MediaPolicy mediaPolicy = fs::MediaPolicy::FailFast;
    /**
     * Cross-layer invariant checking (see check/check.h): 0 = off,
     * 1 = strided sweeps (bench), 2 = every event (tests). When 0,
     * the DAXVM_CHECK environment variable is consulted instead.
     */
    int checkLevel = 0;
    /**
     * Host-side fast paths (per-core walk cache, per-process VMA
     * cache). Purely host-time: simulated output is bit-identical
     * either way (docs/performance.md). The escape hatch exists for
     * the golden-equivalence test and for bisecting host-perf issues;
     * DAXVM_HOST_FAST=0 in the environment also disables them.
     */
    bool hostFastPaths = true;
    /**
     * Host threads for the parallel engine (docs/engine.md). 0 =
     * consult the DAXVM_SIM_THREADS environment variable, defaulting
     * to 1 (the sequential reference executor). Simulated output is
     * bit-identical for every value; >1 buys wall clock on workloads
     * spanning multiple isolation domains. Purely host-side, so it is
     * deliberately absent from bench result JSON.
     */
    unsigned simThreads = 0;
    /**
     * Cross-shard lookahead in virtual ns for the parallel engine.
     * 0 = derive from the cost model (CostModel::crossShardLookahead).
     */
    sim::Time simLookaheadNs = 0;
    sim::CostModel cm;
};

/** Volatile state discarded by System::crash(). */
struct CrashReport
{
    /** Dirty (unflushed) PMem cache lines lost. */
    std::uint64_t dirtyLinesLost = 0;
    /** Blocks forgotten from the prezero daemon's pending lists. */
    std::uint64_t prezeroPendingLost = 0;
};

/** Combined result of System::recover(). */
struct RecoverReport
{
    fs::RecoveryReport fs;
    daxvm::TableRecovery tables;
    /** Pre-crash zeroed-pool blocks that re-verified zero. */
    std::uint64_t zeroedReadmitted = 0;
    /** Pre-crash zeroed-pool blocks demoted to plain free. */
    std::uint64_t zeroedDemoted = 0;
};

class System
{
  public:
    explicit System(const SystemConfig &config);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    // Subsystem access ---------------------------------------------------
    sim::Engine &engine() { return engine_; }
    mem::Device &pmem() { return pmem_; }
    mem::Device &dram() { return dram_; }
    fs::FileSystem &fs() { return fs_; }
    fs::Vfs &vfs() { return vfs_; }
    vm::VmManager &vmm() { return *vmm_; }
    arch::ShootdownHub &hub() { return hub_; }
    daxvm::DaxVm *dax() { return dax_.get(); }
    daxvm::FileTableManager *fileTables() { return ftm_.get(); }
    daxvm::PrezeroDaemon *prezeroDaemon() { return prezero_.get(); }
    latr::Latr &latr() { return *latr_; }
    /** The invariant oracle; null unless checking is enabled. */
    check::Oracle *oracle() { return oracle_.get(); }
    const SystemConfig &config() const { return config_; }
    const sim::CostModel &cm() const { return config_.cm; }

    /** The system-wide telemetry registry all subsystems publish to. */
    sim::MetricsRegistry &metrics() { return metrics_; }

    /**
     * One rolled-up snapshot of every instrument in the system: runs
     * the collectors (device channels, lock stats, pool depths, MMU
     * perf) and returns counters, gauges and histograms by name.
     */
    sim::MetricsSnapshot snapshotMetrics() { return metrics_.snapshot(); }

    /**
     * Start windowed time-series telemetry (docs/metrics.md): interval
     * snapshots of the registry rolled per virtual-time window. Call
     * before the measured phase; workloads that support timelines
     * (open-loop servers) tick it as requests complete.
     */
    void enableTimeline(const sim::MetricsTimeline::Config &cfg);

    /** The windowed timeline, or null when enableTimeline() was not called. */
    sim::MetricsTimeline *timeline() { return timeline_.get(); }

    /** Hot-path timeline tick; a no-op unless enableTimeline() ran. */
    void timelineTick(sim::Cpu &cpu)
    {
        if (timeline_ != nullptr)
            timelineTickSlow(cpu);
    }

    // Lifecycle -----------------------------------------------------------

    /** Create a new simulated process (address space). */
    std::unique_ptr<vm::AddressSpace> newProcess();

    /**
     * Open via the VFS; with DaxVM enabled a cold open also rebuilds
     * volatile file tables (charged).
     */
    std::optional<fs::Vfs::OpenResult> open(sim::Cpu &cpu,
                                            const std::string &path);

    /**
     * Setup helper: create a file of @p bytes without timing; the
     * first @p fillBytes bytes get a deterministic pattern for
     * integrity checks.
     */
    fs::Ino makeFile(const std::string &path, std::uint64_t bytes,
                     std::uint64_t fillBytes = 0);

    /** Age the file-system image (Geriatrix-style). */
    fs::AgingReport age(const fs::AgingConfig &config);

    /**
     * Simulate a clean reboot/remount: drops the inode cache (volatile
     * file tables die; persistent ones survive in PMem). Assumes all
     * metadata was committed - use crash()/recover() to model a power
     * failure with uncommitted state.
     */
    void remount();

    /**
     * Install @p plan on every persistence-boundary observer (PMem
     * device, journal, DaxVM tables, prezero daemon). Pass nullptr to
     * detach. The plan must outlive the System or be detached first.
     */
    void setFaultPlan(sim::FaultPlan *plan);

    /**
     * Simulated power failure: volatile state dies NOW. Dirty cache
     * lines never written back are discarded, the prezero pending
     * lists vanish, kernel caches (VFS, reverse mappings, dirty tags)
     * are forgotten. Durable PMem state is untouched. Any surviving
     * AddressSpace objects must be discarded by the caller (their
     * processes died with the machine).
     */
    CrashReport crash();

    /**
     * Post-crash mount: replay the journal's durable metadata image
     * (FileSystem::recover), validate-or-rebuild persistent DaxVM
     * file tables, and re-verify the pre-crash zeroed pool against
     * the durable medium before readmitting it.
     */
    RecoverReport recover();

    /** Deterministic fill pattern byte for position @p i of @p ino. */
    static std::uint8_t patternByte(fs::Ino ino, std::uint64_t i);

    /**
     * Virtual time after which all device channels are idle. When a
     * System is reused for sequential measurement phases, start new
     * threads (or scratch Cpus) here so they do not queue behind the
     * previous phase's transfers.
     */
    sim::Time quiesceTime() const;

  private:
    void timelineTickSlow(sim::Cpu &cpu);

    SystemConfig config_;
    /** Declared before every subsystem so it outlives them all. */
    sim::MetricsRegistry metrics_;
    sim::Engine engine_;
    mem::Device pmem_;
    mem::Device dram_;
    mem::FrameAllocator dramMeta_;
    mem::FrameAllocator pmemTables_;
    std::vector<std::unique_ptr<arch::Mmu>> mmus_;
    arch::ShootdownHub hub_;
    fs::FileSystem fs_;
    fs::Vfs vfs_;
    std::unique_ptr<vm::VmManager> vmm_;
    std::unique_ptr<daxvm::FileTableManager> ftm_;
    std::unique_ptr<daxvm::DaxVm> dax_;
    std::unique_ptr<daxvm::PrezeroDaemon> prezero_;
    std::unique_ptr<latr::Latr> latr_;
    /** Invariant oracle (checkLevel/DAXVM_CHECK); usually null. */
    std::unique_ptr<check::Oracle> oracle_;
    /** Windowed telemetry (enableTimeline); usually null. */
    std::unique_ptr<sim::MetricsTimeline> timeline_;
    /** Zeroed-pool snapshot taken at crash() for recover()'s re-check. */
    std::vector<fs::Extent> preCrashZeroed_;
};

} // namespace dax::sys
