/**
 * @file
 * TLB and walker implementation.
 */
#include "arch/tlb.h"

namespace dax::arch {

Tlb::Tlb(unsigned smallEntries, unsigned smallWays, unsigned hugeEntries)
    : smallSets_(smallEntries / smallWays), smallWays_(smallWays),
      small_(smallEntries), huge_(hugeEntries)
{
}

TlbEntry *
Tlb::probeSmall(std::uint64_t va, Asid asid)
{
    const std::uint64_t vpn = va >> 12;
    const unsigned set = static_cast<unsigned>(vpn % smallSets_);
    for (unsigned w = 0; w < smallWays_; w++) {
        TlbEntry &e = small_[set * smallWays_ + w];
        if (e.valid && e.asid == asid && e.pageShift == 12
            && e.vbase == (va & ~0xfffULL)) {
            return &e;
        }
    }
    return nullptr;
}

TlbEntry *
Tlb::probeHuge(std::uint64_t va, Asid asid)
{
    for (auto &e : huge_) {
        if (!e.valid || e.asid != asid)
            continue;
        const std::uint64_t mask = (1ULL << e.pageShift) - 1;
        if (e.vbase == (va & ~mask))
            return &e;
    }
    return nullptr;
}

const TlbEntry *
Tlb::lookup(std::uint64_t va, Asid asid)
{
    TlbEntry *e = probeSmall(va, asid);
    if (e == nullptr)
        e = probeHuge(va, asid);
    if (e != nullptr)
        e->lru = lruTick_++;
    return e;
}

void
Tlb::insert(std::uint64_t va, Asid asid, const WalkResult &walk)
{
    // A fill replaces any existing entry for the page: hardware TLBs
    // never hold duplicate translations (a duplicate would survive a
    // later INVLPG of its twin).
    if (TlbEntry *e = probeSmall(va, asid))
        e->valid = false;
    if (TlbEntry *e = probeHuge(va, asid))
        e->valid = false;

    const std::uint64_t mask = (1ULL << walk.pageShift) - 1;
    TlbEntry entry;
    entry.valid = true;
    entry.asid = asid;
    entry.vbase = va & ~mask;
    entry.pbase = walk.paddr & ~mask;
    entry.pageShift = walk.pageShift;
    entry.writable = walk.writable;
    entry.dram = walk.dram;
    entry.lru = lruTick_++;

    if (walk.pageShift == 12) {
        const std::uint64_t vpn = va >> 12;
        const unsigned set = static_cast<unsigned>(vpn % smallSets_);
        TlbEntry *victim = &small_[set * smallWays_];
        for (unsigned w = 0; w < smallWays_; w++) {
            TlbEntry &e = small_[set * smallWays_ + w];
            if (!e.valid) {
                victim = &e;
                break;
            }
            if (e.lru < victim->lru)
                victim = &e;
        }
        *victim = entry;
    } else {
        TlbEntry *victim = &huge_[0];
        for (auto &e : huge_) {
            if (!e.valid) {
                victim = &e;
                break;
            }
            if (e.lru < victim->lru)
                victim = &e;
        }
        *victim = entry;
    }
}

void
Tlb::invalidatePage(std::uint64_t va, Asid asid)
{
    if (TlbEntry *e = probeSmall(va, asid)) {
        e->valid = false;
        invalidations_++;
    }
    if (TlbEntry *e = probeHuge(va, asid)) {
        e->valid = false;
        invalidations_++;
    }
}

void
Tlb::flush()
{
    for (auto &e : small_)
        e.valid = false;
    for (auto &e : huge_)
        e.valid = false;
    invalidations_++;
}

void
Tlb::flushAsid(Asid asid)
{
    for (auto &e : small_) {
        if (e.asid == asid)
            e.valid = false;
    }
    for (auto &e : huge_) {
        if (e.asid == asid)
            e.valid = false;
    }
    invalidations_++;
}

Mmu::Result
Mmu::translate(sim::Cpu &cpu, const PageTable &pt, std::uint64_t va,
               bool write, Asid asid, MmuPerf &perf)
{
    Result res;
    if (const TlbEntry *e = tlb_.lookup(va, asid)) {
        perf.tlbHits++;
        if (write && !e->writable) {
            res.outcome = Outcome::ProtFault;
            return res;
        }
        const std::uint64_t mask = (1ULL << e->pageShift) - 1;
        res.outcome = Outcome::Ok;
        res.paddr = e->pbase + (va & mask);
        res.dram = e->dram;
        res.pageShift = e->pageShift;
        cpu.advance(cm_.tlbLookup);
        return res;
    }

    // Miss: hardware page walk. The host-side walk cache skips
    // re-deriving the upper levels when it holds the path; the
    // resulting WalkResult (and so every simulated cost below) is
    // identical to a full lookup of the same table state.
    perf.tlbMisses++;
    WalkResult walk;
    if (fastPaths_) {
        if (const WalkCache::Entry *e = walkCache_.lookup(pt, va)) {
            walk = walkCache_.walkFrom(*e, va);
        } else {
            walk = pt.lookup(va);
            walkCache_.fill(pt, va, walk);
        }
    } else {
        walk = pt.lookup(va);
    }
    sim::Time cost = cm_.walkUpperLevels;
    if (walk.levelsTouched > 0 || !walk.present) {
        const std::uint64_t line = walk.leafPteAddr / mem::kCacheLine;
        if (walk.present && line == lastLeafLine_) {
            // Leaf PTE line still cached from the neighbouring walk.
        } else if (walk.present) {
            cost += walk.leafInDram ? cm_.walkLeafDram : cm_.walkLeafPmem;
            lastLeafLine_ = line;
        } else {
            // Walk aborted early; charge a DRAM-ish partial walk.
            cost += cm_.walkLeafDram;
        }
    }
    cpu.advance(cost);
    perf.walkNs += cost;

    if (!walk.present) {
        res.outcome = Outcome::NotPresent;
        return res;
    }
    if (write && !walk.writable) {
        res.outcome = Outcome::ProtFault;
        return res;
    }
    tlb_.insert(va, asid, walk);
    res.outcome = Outcome::Ok;
    res.paddr = walk.paddr;
    res.dram = walk.dram;
    res.pageShift = static_cast<unsigned>(walk.pageShift);
    return res;
}

} // namespace dax::arch
