/**
 * @file
 * Per-core TLB and page-walker timing model.
 *
 * The TLB is split per page size like Cascade Lake: a set-associative
 * 4 KB array and a small fully-associative array for 2 MB/1 GB entries.
 * The walker charges upper-level paging-structure-cache time plus a
 * leaf PTE fetch whose cost depends on where the leaf table lives
 * (DRAM vs PMem) and whether the PTE's cache line was just fetched by a
 * neighbouring walk (8 PTEs share a 64 B line, so sequential access
 * misses the line only once in eight walks). Calibrated to paper
 * Table II.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "arch/page_table.h"
#include "arch/perf.h"
#include "arch/walk_cache.h"
#include "sim/cost_model.h"
#include "sim/engine.h"

namespace dax::arch {

/** Address-space id (one per simulated process). */
using Asid = std::uint32_t;

struct TlbEntry
{
    bool valid = false;
    Asid asid = 0;
    std::uint64_t vbase = 0;   // virtual base of the page
    std::uint64_t pbase = 0;   // physical base (device-tagged via dram)
    unsigned pageShift = 12;
    bool writable = false;
    bool dram = false;
    std::uint64_t lru = 0;
};

class Tlb
{
  public:
    /** Cascade Lake-like geometry: 1536-entry 4-way 4K, 32-entry huge. */
    Tlb(unsigned smallEntries = 1536, unsigned smallWays = 4,
        unsigned hugeEntries = 32);

    /** Probe for @p va in @p asid; nullptr on miss. */
    const TlbEntry *lookup(std::uint64_t va, Asid asid);

    /** Fill from a completed walk. */
    void insert(std::uint64_t va, Asid asid, const WalkResult &walk);

    /** INVLPG: drop any entry covering @p va for @p asid. */
    void invalidatePage(std::uint64_t va, Asid asid);

    /** Full flush (optionally only one address space). */
    void flush();
    void flushAsid(Asid asid);

    std::uint64_t invalidations() const { return invalidations_; }

    /**
     * Raw entry arrays for invariant checkers. Unlike lookup() these
     * never touch LRU state, so scanning them cannot perturb the
     * simulated replacement behaviour.
     */
    const std::vector<TlbEntry> &smallEntries() const { return small_; }
    const std::vector<TlbEntry> &hugeEntries() const { return huge_; }

  private:
    TlbEntry *probeSmall(std::uint64_t va, Asid asid);
    TlbEntry *probeHuge(std::uint64_t va, Asid asid);

    unsigned smallSets_;
    unsigned smallWays_;
    std::vector<TlbEntry> small_; // sets x ways
    std::vector<TlbEntry> huge_;  // fully associative
    std::uint64_t lruTick_ = 1;
    std::uint64_t invalidations_ = 0;
};

/**
 * Per-core MMU: TLB + walker timing. Translation is functional (via
 * PageTable::lookup) and charges walk time to the calling Cpu and the
 * supplied per-process perf counters.
 */
class Mmu
{
  public:
    /**
     * @param hostFastPaths enable the host-side walk cache. Purely a
     * host-time optimization: simulated cost/perf accounting is
     * computed from a WalkResult that is bit-identical either way
     * (SystemConfig::hostFastPaths / DAXVM_HOST_FAST=0 is the escape
     * hatch, proven by the golden-equivalence test).
     */
    explicit Mmu(const sim::CostModel &cm, bool hostFastPaths = true)
        : cm_(cm), fastPaths_(hostFastPaths)
    {
    }

    enum class Outcome
    {
        Ok,          ///< translation found, permissions satisfied
        NotPresent,  ///< no mapping: page fault
        ProtFault,   ///< present but write to read-only: permission fault
    };

    struct Result
    {
        Outcome outcome = Outcome::NotPresent;
        std::uint64_t paddr = 0;
        bool dram = false;
        unsigned pageShift = 12;
    };

    /**
     * Translate @p va for @p write access, charging TLB-miss/walk costs
     * to @p cpu and @p perf.
     */
    Result translate(sim::Cpu &cpu, const PageTable &pt, std::uint64_t va,
                     bool write, Asid asid, MmuPerf &perf);

    Tlb &tlb() { return tlb_; }

    /** Host-side walk cache (diagnostics for tests). */
    const WalkCache &walkCache() const { return walkCache_; }

  private:
    const sim::CostModel &cm_;
    Tlb tlb_;
    std::uint64_t lastLeafLine_ = ~0ULL;
    WalkCache walkCache_;
    bool fastPaths_;
};

} // namespace dax::arch
