/**
 * @file
 * x86-64 page-table entry encoding.
 *
 * Entries are stored as real 64-bit words inside the simulated devices
 * (so persistent DaxVM file tables literally live in PMem bytes and
 * survive a simulated reboot). Bits follow the Intel SDM layout; a few
 * of the ignored bits (52-62) carry software state, exactly as Linux
 * uses them.
 */
#pragma once

#include <cstdint>

namespace dax::arch {

using Pte = std::uint64_t;

namespace pte {

inline constexpr Pte kPresent = 1ULL << 0;
inline constexpr Pte kWrite = 1ULL << 1;
inline constexpr Pte kUser = 1ULL << 2;
inline constexpr Pte kAccessed = 1ULL << 5;
inline constexpr Pte kDirty = 1ULL << 6;
/** Page-size bit: entry at PMD/PUD level maps a huge page. */
inline constexpr Pte kHuge = 1ULL << 7;

/** Software (ignored) bits. */
/** Physical address refers to DRAM rather than PMem. */
inline constexpr Pte kSoftDram = 1ULL << 57;
/** Interior entry points into a shared (attached) DaxVM file table. */
inline constexpr Pte kSoftAttached = 1ULL << 58;
/** Linux-style soft-dirty used by write-protect dirty tracking. */
inline constexpr Pte kSoftDirtyTracked = 1ULL << 59;

inline constexpr Pte kAddrMask = 0x000ffffffffff000ULL;

constexpr std::uint64_t
addr(Pte e)
{
    return e & kAddrMask;
}

constexpr Pte
make(std::uint64_t physAddr, Pte flags)
{
    return (physAddr & kAddrMask) | flags;
}

constexpr bool present(Pte e) { return (e & kPresent) != 0; }
constexpr bool writable(Pte e) { return (e & kWrite) != 0; }
constexpr bool huge(Pte e) { return (e & kHuge) != 0; }
constexpr bool dirty(Pte e) { return (e & kDirty) != 0; }
constexpr bool inDram(Pte e) { return (e & kSoftDram) != 0; }
constexpr bool attached(Pte e) { return (e & kSoftAttached) != 0; }

} // namespace pte

/** Radix-tree levels: 0 = PTE, 1 = PMD, 2 = PUD, 3 = PGD. */
inline constexpr int kPteLevel = 0;
inline constexpr int kPmdLevel = 1;
inline constexpr int kPudLevel = 2;
inline constexpr int kPgdLevel = 3;
inline constexpr int kLevels = 4;

inline constexpr unsigned kEntriesPerNode = 512;

/** Shift of the address bits selecting the index at @p level. */
constexpr unsigned
levelShift(int level)
{
    return 12 + 9 * static_cast<unsigned>(level);
}

/** Bytes mapped by one entry at @p level (4 KB / 2 MB / 1 GB / 512 GB). */
constexpr std::uint64_t
levelSpan(int level)
{
    return 1ULL << levelShift(level);
}

/** Index into the node at @p level for virtual address @p va. */
constexpr unsigned
levelIndex(std::uint64_t va, int level)
{
    return static_cast<unsigned>((va >> levelShift(level)) & 0x1ff);
}

} // namespace dax::arch
