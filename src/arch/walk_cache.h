/**
 * @file
 * Host-side paging-structure-cache analog.
 *
 * Hardware walkers keep PML4E/PDPTE/PDE caches so a TLB miss usually
 * costs one leaf PTE fetch, not four dependent loads. The simulator's
 * functional walk pays the same shape of cost on the *host*: four
 * device loadWord() probes per PageTable::lookup(). This cache keys
 * the upper three levels of a walk on the 2 MB region (va >> 21) and
 * remembers the PTE-level node they lead to, so a repeat walk only
 * re-reads the leaf entry from device bytes.
 *
 * It is purely a host optimization and must never change simulated
 * output:
 *  - entries are tagged with the PageTable's uid and structural
 *    generation, so any interior mutation (munmap of huge ranges,
 *    attach/detach, fork teardown, ASID reuse after table destruction)
 *    silently invalidates them without deref of the stale node;
 *  - leaf PTEs are re-read on every hit, so PTE-level mutations
 *    (4 KB map/clear/permission flips) need no invalidation at all;
 *  - paths through shared file-table fragments are never cached
 *    (PageTable::lookup leaves WalkResult::pteNode null for them).
 *
 * The hit/fill counters are host-side diagnostics for tests and stay
 * out of the metrics registry, keeping snapshots bit-identical with
 * the cache disabled.
 */
#pragma once

#include <array>
#include <cstdint>

#include "arch/page_table.h"

namespace dax::arch {

class WalkCache
{
  public:
    /** Direct-mapped on the low PMD-index bits of the 2 MB region. */
    static constexpr unsigned kEntries = 64;

    struct Entry
    {
        std::uint64_t tag = ~0ULL; // va >> 21
        std::uint64_t tableUid = 0;
        std::uint64_t tableGen = 0;
        const Node *pteNode = nullptr;
        bool upperWritable = false;
    };

    /** Cached leaf node for @p va in @p pt, or nullptr. */
    const Entry *
    lookup(const PageTable &pt, std::uint64_t va) const
    {
        const Entry &e = entries_[slot(va)];
        if (e.pteNode != nullptr && e.tag == va >> 21
            && e.tableUid == pt.uid() && e.tableGen == pt.structureGen())
            return &e;
        return nullptr;
    }

    /** Capture the upper levels of a completed walk. */
    void
    fill(const PageTable &pt, std::uint64_t va, const WalkResult &walk)
    {
        if (walk.pteNode == nullptr)
            return; // huge leaf, aborted interior, or shared path
        Entry &e = entries_[slot(va)];
        e.tag = va >> 21;
        e.tableUid = pt.uid();
        e.tableGen = pt.structureGen();
        e.pteNode = walk.pteNode;
        e.upperWritable = walk.upperWritable;
        fills_++;
    }

    /**
     * Rebuild a WalkResult from a cached path, reading only the leaf
     * entry. Field-for-field identical to what a full
     * PageTable::lookup() of the same state returns.
     */
    WalkResult
    walkFrom(const Entry &e, std::uint64_t va)
    {
        hits_++;
        WalkResult res;
        res.levelsTouched = kLevels;
        res.pteNode = e.pteNode;
        res.upperWritable = e.upperWritable;
        const unsigned idx = levelIndex(va, kPteLevel);
        const Pte leaf = e.pteNode->entry(idx);
        if (!pte::present(leaf))
            return res;
        res.present = true;
        res.pageShift = levelShift(kPteLevel);
        res.paddr = pte::addr(leaf) + (va & (levelSpan(kPteLevel) - 1));
        res.dram = pte::inDram(leaf);
        res.leafInDram = e.pteNode->dev->kind() == mem::Kind::Dram;
        res.leafPteAddr = e.pteNode->frame + idx * sizeof(Pte);
        res.writable = e.upperWritable && pte::writable(leaf);
        return res;
    }

    void
    flush()
    {
        entries_.fill(Entry{});
    }

    /** Host-side diagnostics (never exported to metrics). */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t fills() const { return fills_; }

  private:
    static unsigned
    slot(std::uint64_t va)
    {
        return static_cast<unsigned>(va >> 21) & (kEntries - 1);
    }

    std::array<Entry, kEntries> entries_{};
    std::uint64_t hits_ = 0;
    std::uint64_t fills_ = 0;
};

} // namespace dax::arch
