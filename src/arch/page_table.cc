/**
 * @file
 * PageTable implementation.
 */
#include "arch/page_table.h"

#include <cassert>
#include <stdexcept>

namespace dax::arch {

namespace {
/** Simulation is single-threaded on the host; plain counter is fine. */
std::uint64_t nextTableUid = 1;
} // namespace

PageTable::PageTable(mem::FrameAllocator &meta)
    : meta_(meta), uid_(nextTableUid++)
{
    root_ = newNode(/*leaf=*/false);
}

PageTable::~PageTable()
{
    freeTree(root_, kPgdLevel);
}

Node *
PageTable::newNode(bool leaf)
{
    auto *node = new Node();
    node->dev = &meta_.device();
    node->frames = &meta_;
    node->frame = meta_.alloc();
    node->shared = false;
    if (leaf)
        node->child.fill(nullptr);
    ownedNodes_++;
    return node;
}

void
PageTable::freeTree(Node *node, int level)
{
    if (node == nullptr || node->shared)
        return; // attached file-table fragments belong to their owner
    if (level > kPteLevel) {
        for (unsigned i = 0; i < kEntriesPerNode; i++)
            freeTree(node->child[i], level - 1);
    }
    node->frames->free(node->frame);
    ownedNodes_--;
    delete node;
}

Node *
PageTable::walkTo(std::uint64_t va, int level, bool create,
                  unsigned *newPages)
{
    Node *node = root_;
    for (int l = kPgdLevel; l > level; l--) {
        const unsigned idx = levelIndex(va, l);
        Node *next = node->child[idx];
        if (next == nullptr) {
            if (!create)
                return nullptr;
            next = newNode(/*leaf=*/(l - 1) == kPteLevel);
            node->child[idx] = next;
            node->setEntry(idx, pte::make(next->frame,
                                          pte::kPresent | pte::kWrite
                                              | pte::kUser));
            if (newPages != nullptr)
                (*newPages)++;
        } else if (pte::huge(node->entry(idx))) {
            throw std::logic_error("walk through huge mapping");
        }
        node = next;
    }
    return node;
}

const Node *
PageTable::walkToConst(std::uint64_t va, int level) const
{
    const Node *node = root_;
    for (int l = kPgdLevel; l > level; l--) {
        const unsigned idx = levelIndex(va, l);
        const Node *next = node->child[idx];
        if (next == nullptr)
            return nullptr;
        node = next;
    }
    return node;
}

unsigned
PageTable::map(std::uint64_t va, std::uint64_t pa, int level, Pte flags)
{
    if (va % levelSpan(level) != 0)
        throw std::invalid_argument("map: va not aligned to level span");
    unsigned newPages = 0;
    Node *node = walkTo(va, level, /*create=*/true, &newPages);
    const unsigned idx = levelIndex(va, level);
    Pte e = pte::make(pa, flags | pte::kPresent | pte::kUser);
    if (level > kPteLevel) {
        e |= pte::kHuge;
        // A huge leaf can shadow a PTE subtree a walk cache captured.
        structureGen_++;
    }
    node->setEntry(idx, e);
    return newPages;
}

Pte
PageTable::clear(std::uint64_t va, int level)
{
    Node *node = walkTo(va, level, /*create=*/false, nullptr);
    if (node == nullptr)
        return 0;
    const unsigned idx = levelIndex(va, level);
    const Pte old = node->entry(idx);
    node->setEntry(idx, 0);
    if (level > kPteLevel)
        structureGen_++;
    return old;
}

bool
PageTable::setFlags(std::uint64_t va, int level, Pte set, Pte clearMask)
{
    Node *node = walkTo(va, level, /*create=*/false, nullptr);
    if (node == nullptr)
        return false;
    const unsigned idx = levelIndex(va, level);
    Pte e = node->entry(idx);
    if (!pte::present(e))
        return false;
    e = (e & ~clearMask) | set;
    node->setEntry(idx, e);
    if (level > kPteLevel)
        structureGen_++;
    return true;
}

WalkResult
PageTable::lookup(std::uint64_t va) const
{
    WalkResult res;
    const Node *node = root_;
    bool writable = true;
    bool privatePath = !node->shared;
    for (int l = kPgdLevel; l >= kPteLevel; l--) {
        res.levelsTouched++;
        const unsigned idx = levelIndex(va, l);
        const Pte e = node->entry(idx);
        if (l == kPteLevel && privatePath) {
            // The path to this leaf table is all process-owned: a walk
            // cache may capture it (upperWritable excludes the leaf
            // entry, which cached walks re-read).
            res.pteNode = node;
            res.upperWritable = writable;
        }
        if (!pte::present(e))
            return res;
        writable = writable && pte::writable(e);
        const bool leafHere =
            l == kPteLevel || (l > kPteLevel && pte::huge(e));
        if (leafHere) {
            res.present = true;
            res.pageShift = levelShift(l);
            const std::uint64_t offset = va & (levelSpan(l) - 1);
            res.paddr = pte::addr(e) + offset;
            res.dram = pte::inDram(e);
            res.leafInDram = node->dev->kind() == mem::Kind::Dram;
            res.leafPteAddr = node->frame + idx * sizeof(Pte);
            res.writable = writable;
            return res;
        }
        node = node->child[idx];
        if (node == nullptr)
            return res; // present interior entry without mirror: corrupt
        privatePath = privatePath && !node->shared;
    }
    return res;
}

unsigned
PageTable::attach(std::uint64_t va, int level, Node *foreign, bool writable)
{
    if (level != kPmdLevel && level != kPudLevel)
        throw std::invalid_argument("attach only at PMD or PUD level");
    if (va % levelSpan(level) != 0)
        throw std::invalid_argument("attach: va not aligned");
    unsigned newPages = 0;
    Node *node = walkTo(va, level, /*create=*/true, &newPages);
    const unsigned idx = levelIndex(va, level);
    if (node->child[idx] != nullptr)
        throw std::logic_error("attach over existing subtree");
    node->child[idx] = foreign;
    Pte e = pte::make(foreign->frame,
                      pte::kPresent | pte::kUser | pte::kSoftAttached);
    if (writable)
        e |= pte::kWrite;
    node->setEntry(idx, e);
    structureGen_++;
    return newPages;
}

Node *
PageTable::detach(std::uint64_t va, int level)
{
    Node *node = walkTo(va, level, /*create=*/false, nullptr);
    if (node == nullptr)
        return nullptr;
    const unsigned idx = levelIndex(va, level);
    const Pte e = node->entry(idx);
    if (!pte::attached(e))
        return nullptr;
    Node *foreign = node->child[idx];
    node->child[idx] = nullptr;
    node->setEntry(idx, 0);
    structureGen_++;
    return foreign;
}

Node *
PageTable::attachedNode(std::uint64_t va, int level)
{
    Node *node = walkTo(va, level, /*create=*/false, nullptr);
    if (node == nullptr)
        return nullptr;
    const unsigned idx = levelIndex(va, level);
    return pte::attached(node->entry(idx)) ? node->child[idx] : nullptr;
}

bool
PageTable::setAttachmentWritable(std::uint64_t va, int level, bool writable)
{
    Node *node = walkTo(va, level, /*create=*/false, nullptr);
    if (node == nullptr)
        return false;
    const unsigned idx = levelIndex(va, level);
    Pte e = node->entry(idx);
    if (!pte::attached(e))
        return false;
    e = writable ? (e | pte::kWrite) : (e & ~pte::kWrite);
    node->setEntry(idx, e);
    structureGen_++;
    return true;
}

} // namespace dax::arch
