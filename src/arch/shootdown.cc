/**
 * @file
 * ShootdownHub implementation.
 */
#include "arch/shootdown.h"

#include <stdexcept>

#include "sim/trace.h"

namespace dax::arch {

ShootdownHub::ShootdownHub(const sim::CostModel &cm, unsigned nCores)
    : cm_(cm), nCores_(nCores), mmus_(nCores, nullptr),
      pendingDisruption_(nCores, 0)
{
    if (nCores > 64)
        throw std::invalid_argument("CoreMask supports at most 64 cores");
}

void
ShootdownHub::registerMmu(int core, Mmu *mmu)
{
    mmus_.at(static_cast<unsigned>(core)) = mmu;
}

unsigned
ShootdownHub::remoteCount(CoreMask targets, int self) const
{
    unsigned count = 0;
    for (unsigned c = 0; c < nCores_; c++) {
        if ((targets & coreBit(static_cast<int>(c))) != 0
            && static_cast<int>(c) != self) {
            count++;
        }
    }
    return count;
}

void
ShootdownHub::disturbRemotes(CoreMask targets, int self)
{
    for (unsigned c = 0; c < nCores_; c++) {
        if ((targets & coreBit(static_cast<int>(c))) != 0
            && static_cast<int>(c) != self) {
            pendingDisruption_[c] += cm_.ipiRemoteDisruption;
        }
    }
}

void
ShootdownHub::shootdownPages(sim::Cpu &cpu, CoreMask targets, Asid asid,
                             const std::vector<std::uint64_t> &pages)
{
    const int self = cpu.coreId();
    const bool fullFlush = pages.size() > cm_.tlbFlushThreshold;

    // Local invalidation.
    Mmu *local = mmus_.at(static_cast<unsigned>(self));
    if (fullFlush) {
        local->tlb().flushAsid(asid);
        cpu.advance(cm_.fullFlushLocal);
        stats_.inc("tlb.full_flushes");
    } else {
        for (const auto va : pages) {
            local->tlb().invalidatePage(va, asid);
            cpu.advance(cm_.invlpg);
        }
        stats_.inc("tlb.invlpg", pages.size());
    }

    // Remote shootdown: one IPI broadcast regardless of page count
    // (Linux batches the list into a single flush request).
    const unsigned remotes = remoteCount(targets, self);
    if (remotes > 0) {
        cpu.advance(cm_.shootdownInitiator(remotes));
        stats_.inc("tlb.ipis");
        stats_.inc("tlb.ipi_targets", remotes);
        DAX_TRACE(sim::TraceCat::Shootdown, cpu,
                  "%s pages=%zu remotes=%u",
                  fullFlush ? "full-flush" : "invlpg-batch",
                  pages.size(), remotes);
        for (unsigned c = 0; c < nCores_; c++) {
            if ((targets & coreBit(static_cast<int>(c))) == 0
                || static_cast<int>(c) == self) {
                continue;
            }
            Mmu *m = mmus_[c];
            if (fullFlush) {
                m->tlb().flushAsid(asid);
            } else {
                for (const auto va : pages)
                    m->tlb().invalidatePage(va, asid);
            }
        }
        disturbRemotes(targets, self);
    }
}

void
ShootdownHub::shootdownFull(sim::Cpu &cpu, CoreMask targets, Asid asid)
{
    const int self = cpu.coreId();
    mmus_.at(static_cast<unsigned>(self))->tlb().flushAsid(asid);
    cpu.advance(cm_.fullFlushLocal);
    stats_.inc("tlb.full_flushes");

    const unsigned remotes = remoteCount(targets, self);
    if (remotes > 0) {
        cpu.advance(cm_.shootdownInitiator(remotes));
        stats_.inc("tlb.ipis");
        stats_.inc("tlb.ipi_targets", remotes);
        for (unsigned c = 0; c < nCores_; c++) {
            if ((targets & coreBit(static_cast<int>(c))) != 0
                && static_cast<int>(c) != self) {
                mmus_[c]->tlb().flushAsid(asid);
            }
        }
        disturbRemotes(targets, self);
    }
}

void
ShootdownHub::drainDisruption(sim::Cpu &cpu)
{
    auto &pending = pendingDisruption_.at(
        static_cast<unsigned>(cpu.coreId()));
    if (pending > 0) {
        cpu.advance(pending);
        stats_.inc("tlb.disruption_ns", pending);
        pending = 0;
    }
}

} // namespace dax::arch
