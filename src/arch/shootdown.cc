/**
 * @file
 * ShootdownHub implementation.
 */
#include "arch/shootdown.h"

#include <algorithm>
#include <stdexcept>

#include "sim/trace.h"

namespace dax::arch {

ShootdownHub::ShootdownHub(const sim::CostModel &cm, unsigned nCores,
                           sim::MetricsRegistry *metrics)
    : cm_(cm), nCores_(nCores), mmus_(nCores, nullptr),
      pendingDisruption_(nCores, 0), pendingFlowIds_(nCores),
      ownedMetrics_(metrics != nullptr
                        ? nullptr
                        : std::make_unique<sim::MetricsRegistry>(nCores)),
      metrics_(metrics != nullptr ? metrics : ownedMetrics_.get()),
      stats_(*metrics_)
{
    if (nCores > 64)
        throw std::invalid_argument("CoreMask supports at most 64 cores");
    sim::MetricsScope scope(*metrics_, "tlb");
    ipis_ = scope.counter("ipis");
    ipiTargets_ = scope.counter("ipi_targets");
    invlpg_ = scope.counter("invlpg");
    fullFlushes_ = scope.counter("full_flushes");
    disruptionNs_ = scope.counter("disruption_ns");
    shootdownNs_ = scope.histogram("shootdown_ns");
}

void
ShootdownHub::registerMmu(int core, Mmu *mmu)
{
    mmus_.at(static_cast<unsigned>(core)) = mmu;
}

unsigned
ShootdownHub::remoteCount(CoreMask targets, int self) const
{
    unsigned count = 0;
    for (unsigned c = 0; c < nCores_; c++) {
        if ((targets & coreBit(static_cast<int>(c))) != 0
            && static_cast<int>(c) != self) {
            count++;
        }
    }
    return count;
}

void
ShootdownHub::disturbRemotes(sim::Cpu &cpu, CoreMask targets, int self)
{
    sim::SpanRecorder &rec = sim::Trace::get().spans();
    const bool flows = rec.enabled(sim::TraceCat::Shootdown);
    for (unsigned c = 0; c < nCores_; c++) {
        if ((targets & coreBit(static_cast<int>(c))) != 0
            && static_cast<int>(c) != self) {
            pendingDisruption_[c] += cm_.ipiRemoteDisruption;
            // One causal arrow per victim: it lands inside the
            // victim's ipi_disruption span at its next quantum start
            // (drainDisruption), attributing the stall to this
            // initiator. Ids come from the initiator's own track, so
            // they are deterministic under any shard count.
            if (flows) {
                pendingFlowIds_[c].push_back(rec.flowStart(
                    sim::TraceCat::Shootdown, sim::spanTrackOf(cpu),
                    self, cpu.now(), "ipi"));
            }
        }
    }
}

void
ShootdownHub::shootdownPages(sim::Cpu &cpu, CoreMask targets, Asid asid,
                             const std::vector<std::uint64_t> &pages,
                             std::uint64_t totalPages)
{
    const int self = cpu.coreId();
    const sim::Time begin = cpu.now();
    DAX_SPAN(sim::TraceCat::Shootdown, cpu, "shootdown");
    // Escalate on the real unmap size: a truncated/coarsened page list
    // (one entry per DaxVM granule) must not dodge the full flush, or
    // the INVLPG loop below leaves the untruncated pages stale in the
    // initiator's own TLB (and every remote one).
    const std::uint64_t effective =
        std::max<std::uint64_t>(pages.size(), totalPages);
    const bool fullFlush = effective > cm_.tlbFlushThreshold;

    // Local invalidation.
    Mmu *local = mmus_.at(static_cast<unsigned>(self));
    if (fullFlush) {
        local->tlb().flushAsid(asid);
        cpu.advance(cm_.fullFlushLocal);
        fullFlushes_.addAt(self);
    } else {
        for (const auto va : pages) {
            local->tlb().invalidatePage(va, asid);
            cpu.advance(cm_.invlpg);
        }
        invlpg_.addAt(self, pages.size());
    }

    // Remote shootdown: one IPI broadcast regardless of page count
    // (Linux batches the list into a single flush request).
    const unsigned remotes = remoteCount(targets, self);
    if (remotes > 0) {
        cpu.advance(cm_.shootdownInitiator(remotes));
        ipis_.addAt(self);
        ipiTargets_.addAt(self, remotes);
        DAX_TRACE(sim::TraceCat::Shootdown, cpu,
                  "%s pages=%zu remotes=%u",
                  fullFlush ? "full-flush" : "invlpg-batch",
                  pages.size(), remotes);
        for (unsigned c = 0; c < nCores_; c++) {
            if ((targets & coreBit(static_cast<int>(c))) == 0
                || static_cast<int>(c) == self) {
                continue;
            }
            Mmu *m = mmus_[c];
            if (fullFlush) {
                m->tlb().flushAsid(asid);
            } else {
                for (const auto va : pages)
                    m->tlb().invalidatePage(va, asid);
            }
        }
        disturbRemotes(cpu, targets, self);
    }
    shootdownNs_.recordAt(self, cpu.now() - begin);
    if (checkHook_ != nullptr)
        checkHook_->onCheck(sim::CheckEvent::ShootdownDone, cpu.now());
}

void
ShootdownHub::shootdownFull(sim::Cpu &cpu, CoreMask targets, Asid asid)
{
    const int self = cpu.coreId();
    const sim::Time begin = cpu.now();
    DAX_SPAN(sim::TraceCat::Shootdown, cpu, "shootdown_full");
    mmus_.at(static_cast<unsigned>(self))->tlb().flushAsid(asid);
    cpu.advance(cm_.fullFlushLocal);
    fullFlushes_.addAt(self);

    const unsigned remotes = remoteCount(targets, self);
    if (remotes > 0) {
        cpu.advance(cm_.shootdownInitiator(remotes));
        ipis_.addAt(self);
        ipiTargets_.addAt(self, remotes);
        for (unsigned c = 0; c < nCores_; c++) {
            if ((targets & coreBit(static_cast<int>(c))) != 0
                && static_cast<int>(c) != self) {
                mmus_[c]->tlb().flushAsid(asid);
            }
        }
        disturbRemotes(cpu, targets, self);
    }
    shootdownNs_.recordAt(self, cpu.now() - begin);
    if (checkHook_ != nullptr)
        checkHook_->onCheck(sim::CheckEvent::ShootdownDone, cpu.now());
}

void
ShootdownHub::drainDisruption(sim::Cpu &cpu)
{
    auto &pending = pendingDisruption_.at(
        static_cast<unsigned>(cpu.coreId()));
    if (pending > 0) {
        DAX_SPAN(sim::TraceCat::Shootdown, cpu, "ipi_disruption");
        auto &flows =
            pendingFlowIds_[static_cast<unsigned>(cpu.coreId())];
        if (!flows.empty()) {
            sim::SpanRecorder &rec = sim::Trace::get().spans();
            if (rec.enabled(sim::TraceCat::Shootdown)) {
                // Arrows land before the advance: inside the span,
                // at its begin timestamp.
                for (const std::uint64_t id : flows)
                    rec.flowEnd(sim::TraceCat::Shootdown,
                                sim::spanTrackOf(cpu), cpu.coreId(),
                                cpu.now(), "ipi", id);
            }
            flows.clear();
        }
        cpu.advance(pending);
        disruptionNs_.addAt(cpu.coreId(),
                            static_cast<std::uint64_t>(pending));
        pending = 0;
    }
}

} // namespace dax::arch
