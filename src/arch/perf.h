/**
 * @file
 * MMU performance counters, the substrate of the DaxVM monitor
 * (paper Table III): average page-walk cycles and MMU overhead drive
 * the PMem->DRAM file-table migration decision.
 */
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace dax::arch {

struct MmuPerf
{
    std::uint64_t tlbHits = 0;
    std::uint64_t tlbMisses = 0;
    sim::Time walkNs = 0;

    /** Total page-walk cycles / number of TLB misses (Table III). */
    double
    avgWalkCycles() const
    {
        if (tlbMisses == 0)
            return 0.0;
        return sim::nsToCycles(walkNs) / static_cast<double>(tlbMisses);
    }

    /** Total page-walk cycles / execution-time cycles (Table III). */
    double
    mmuOverhead(sim::Time execNs) const
    {
        if (execNs == 0)
            return 0.0;
        return static_cast<double>(walkNs) / static_cast<double>(execNs);
    }

    void
    reset()
    {
        tlbHits = 0;
        tlbMisses = 0;
        walkNs = 0;
    }

    MmuPerf &
    operator+=(const MmuPerf &o)
    {
        tlbHits += o.tlbHits;
        tlbMisses += o.tlbMisses;
        walkNs += o.walkNs;
        return *this;
    }
};

} // namespace dax::arch
