/**
 * @file
 * x86-64 radix page tables with DaxVM attachment support.
 *
 * Nodes are 4 KB frames allocated from a device (process tables in
 * DRAM; DaxVM persistent file tables in PMem) whose 512 entries are
 * stored functionally in device bytes. A host-side child-pointer mirror
 * accelerates traversal; for persistent tables the mirror can be
 * rebuilt from device bytes after a simulated crash.
 *
 * DaxVM's O(1) mmap is implemented literally: attach() points an
 * interior slot of a process tree at a node owned by a shared file
 * table, with per-process permission bits kept on the attachment entry.
 * Translation applies the minimum permissions across levels, as the
 * x86 walker does.
 */
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "arch/pte.h"
#include "mem/device.h"
#include "mem/frame_alloc.h"

namespace dax::arch {

/** One radix-tree node (a 4 KB table page). */
struct Node
{
    mem::Device *dev = nullptr;
    mem::FrameAllocator *frames = nullptr;
    mem::Paddr frame = 0;
    /** Interior mirror; nullptr for leaf (PTE-level) nodes. */
    std::array<Node *, kEntriesPerNode> child{};
    /** Owned by a shared file table: never freed by a process tree. */
    bool shared = false;

    Pte entry(unsigned idx) const
    {
        return dev->loadWord(frame + idx * sizeof(Pte));
    }

    void setEntry(unsigned idx, Pte e)
    {
        dev->storeWord(frame + idx * sizeof(Pte), e);
    }
};

/** Result of a functional translation. */
struct WalkResult
{
    bool present = false;
    /** Physical address of the byte translated. */
    std::uint64_t paddr = 0;
    /** True when the frame is DRAM (vs PMem). */
    bool dram = false;
    /** log2 of the page size backing the translation (12 or 21 or 30). */
    unsigned pageShift = 12;
    /** Effective writability: AND across all levels. */
    bool writable = false;
    /** Leaf table resides in DRAM (walk timing). */
    bool leafInDram = true;
    /** Leaf PTE physical location (walker cache-line model). */
    std::uint64_t leafPteAddr = 0;
    /** Levels traversed (4 normal, fewer for huge mappings). */
    int levelsTouched = 0;
    /**
     * PTE-level node the walk ended in, for the host-side walk cache.
     * Only set when the whole path is owned by the walked table (no
     * shared file-table fragments, whose owner may restructure them),
     * and the walk reached PTE level -- huge leaves stay null.
     */
    const Node *pteNode = nullptr;
    /** AND of writability across interior levels (leaf excluded). */
    bool upperWritable = false;
};

class PageTable
{
  public:
    /** @param meta frame source for owned nodes (typically DRAM). */
    explicit PageTable(mem::FrameAllocator &meta);
    ~PageTable();

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /**
     * Install a translation of size 4 KB (level 0), 2 MB or 1 GB.
     * @param va page-aligned virtual address
     * @param pa physical address with pte::kSoftDram tag when DRAM
     * @param level kPteLevel, kPmdLevel or kPudLevel
     * @param flags extra PTE flags (kWrite, kSoftDirtyTracked, ...)
     * @return number of table pages newly allocated on the path
     */
    unsigned map(std::uint64_t va, std::uint64_t pa, int level, Pte flags);

    /**
     * Clear a translation; @return the old entry (0 when absent).
     * Empty interior nodes are *not* eagerly freed (matching Linux).
     */
    Pte clear(std::uint64_t va, int level);

    /** Update flag bits of an existing entry (e.g. drop kWrite). */
    bool setFlags(std::uint64_t va, int level, Pte set, Pte clearMask);

    /** Functional translation of @p va. */
    WalkResult lookup(std::uint64_t va) const;

    /**
     * Attach a foreign (file-table) node at @p level of the tree:
     * level 1 attaches a PTE node under a PMD slot (2 MB granule),
     * level 2 attaches a PMD node under a PUD slot (1 GB granule).
     * @param writable per-process max permission kept on this entry
     * @return table pages newly allocated building the private path
     */
    unsigned attach(std::uint64_t va, int level, Node *foreign,
                    bool writable);

    /** Detach a previously attached node. @return it (or nullptr). */
    Node *detach(std::uint64_t va, int level);

    /** The foreign node attached at @p va/@p level (nullptr if none). */
    Node *attachedNode(std::uint64_t va, int level);

    /** Change the permission bits of an attachment entry. */
    bool setAttachmentWritable(std::uint64_t va, int level, bool writable);

    /** Table pages currently owned by this tree (excl. attachments). */
    std::uint64_t ownedNodes() const { return ownedNodes_; }

    /**
     * Identity tag for host-side walk caches: unique across every
     * PageTable ever constructed (a deterministic counter, so a cache
     * entry can never alias a recycled table address).
     */
    std::uint64_t uid() const { return uid_; }

    /**
     * Structural generation: bumped whenever interior structure that a
     * cached walk path may have captured changes (new/cleared interior
     * or huge entries, attach/detach, attachment permission flips).
     * Leaf PTE mutations do not bump it -- cached paths re-read the
     * leaf entry from device bytes on every use.
     */
    std::uint64_t structureGen() const { return structureGen_; }

    Node *root() { return root_; }
    const Node *root() const { return root_; }

  private:
    Node *newNode(bool leaf);
    void freeTree(Node *node, int level);
    /** Walk to the node holding the entry for @p va at @p level. */
    Node *walkTo(std::uint64_t va, int level, bool create,
                 unsigned *newPages);
    const Node *walkToConst(std::uint64_t va, int level) const;

    mem::FrameAllocator &meta_;
    Node *root_;
    std::uint64_t ownedNodes_ = 0;
    std::uint64_t uid_;
    std::uint64_t structureGen_ = 0;
};

} // namespace dax::arch
