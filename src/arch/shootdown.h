/**
 * @file
 * TLB shootdown hub: IPI-based remote TLB invalidation.
 *
 * Shootdowns are the inherently unscalable operation DaxVM's async
 * unmap attacks: the initiator pays an IPI broadcast plus per-core ack
 * cost, and every interrupted core loses ipiRemoteDisruption of useful
 * time. Victim time is accumulated per core and drained at the victim's
 * next quantum boundary, which is how interrupt disruption appears in
 * throughput without the engine preempting anyone.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/tlb.h"
#include "sim/cost_model.h"
#include "sim/engine.h"
#include "sim/metrics.h"
#include "sim/stats.h"

namespace dax::arch {

/** Set of cores, one bit per core (<= 64 cores). */
using CoreMask = std::uint64_t;

constexpr CoreMask
coreBit(int core)
{
    return 1ULL << static_cast<unsigned>(core);
}

class ShootdownHub
{
  public:
    /**
     * @param metrics shared telemetry registry; when null (standalone
     *        tests) the hub owns a private one
     */
    ShootdownHub(const sim::CostModel &cm, unsigned nCores,
                 sim::MetricsRegistry *metrics = nullptr);

    /** Register the MMU of a core (once, at system construction). */
    void registerMmu(int core, Mmu *mmu);

    Mmu &mmu(int core) { return *mmus_.at(static_cast<unsigned>(core)); }

    /**
     * Invalidate @p pages on all cores in @p targets. The initiating
     * core flushes locally with INVLPG; remote cores get one IPI
     * broadcast. Matches Linux's batched flush: above
     * tlbFlushThreshold pages, full flushes are used instead.
     *
     * @param totalPages real number of 4K pages being unmapped when the
     *        caller truncated or coarsened @p pages (e.g. one base
     *        address per detached DaxVM granule); the full-flush
     *        escalation must be driven by this count, not the list
     *        length, or stale entries survive on every core including
     *        the initiator. 0 means "pages is exact".
     */
    void shootdownPages(sim::Cpu &cpu, CoreMask targets, Asid asid,
                        const std::vector<std::uint64_t> &pages,
                        std::uint64_t totalPages = 0);

    /** Full TLB flush on all cores in @p targets (one IPI broadcast). */
    void shootdownFull(sim::Cpu &cpu, CoreMask targets, Asid asid);

    /**
     * Charge any interrupt time stolen from @p cpu's core since its
     * last quantum. Workloads call this at quantum start.
     */
    void drainDisruption(sim::Cpu &cpu);

    const sim::StatSet &stats() const { return stats_; }
    sim::StatSet &stats() { return stats_; }
    sim::MetricsRegistry &metricsRegistry() { return *metrics_; }

    /** Invariant-check observer fired after each shootdown. */
    void setCheckHook(sim::CheckHook *hook) { checkHook_ = hook; }

  private:
    unsigned remoteCount(CoreMask targets, int self) const;
    void disturbRemotes(sim::Cpu &cpu, CoreMask targets, int self);

    const sim::CostModel &cm_;
    unsigned nCores_;
    std::vector<Mmu *> mmus_;
    std::vector<sim::Time> pendingDisruption_;
    /** Trace flow ids of undrained IPIs, per victim core. */
    std::vector<std::vector<std::uint64_t>> pendingFlowIds_;
    sim::CheckHook *checkHook_ = nullptr;
    std::unique_ptr<sim::MetricsRegistry> ownedMetrics_;
    sim::MetricsRegistry *metrics_;
    sim::StatSet stats_;
    /** Typed hot-path instruments (legacy names, see sim/metrics.h). */
    sim::Counter ipis_;
    sim::Counter ipiTargets_;
    sim::Counter invlpg_;
    sim::Counter fullFlushes_;
    sim::Counter disruptionNs_;
    sim::LatencyHistogram shootdownNs_;
};

} // namespace dax::arch
