/**
 * @file
 * ApacheWorker implementation.
 */
#include "workloads/apache.h"

namespace dax::wl {

void
ApacheWorker::serveOne(sim::Cpu &cpu)
{
    const sim::CostModel &cm = system_.cm();
    const fs::Ino ino =
        config_.pages[rng_.below(config_.pages.size())];
    const std::uint64_t size = config_.pageBytes;

    // Request parsing / response generation compute.
    cpu.advance(cm.httpRequestOverhead);

    // Apache opens the page per request; the inode cache keeps this a
    // warm open in steady state.
    const fs::Inode &node = system_.fs().inode(ino);
    sim::Cpu &c = cpu;
    c.advance(cm.openBase);
    (void)node;

    if (config_.access.interface == Interface::Read) {
        // Copy 1: PMem -> private buffer (kernel read path).
        system_.fs().read(cpu, ino, 0, nullptr, size);
        // Copy 2: buffer (cache-hot) -> socket buffers.
        cpu.advance(cm.socketSyscall);
        system_.dram().writeKernel(cpu, 0, size, mem::WriteMode::Cached,
                                   mem::Pattern::Seq);
    } else {
        const std::uint64_t va = mapFile(cpu, system_, as_, ino, 0,
                                         size, false, config_.access);
        if (va == 0)
            throw std::runtime_error("apache: map failed");
        // Single copy: PMem mapping -> socket buffers, performed by
        // the kernel through the user mapping (write(2)).
        cpu.advance(cm.socketSyscall);
        as_.memRead(cpu, va, size, mem::Pattern::Seq, nullptr,
                    /*kernelCopy=*/true);
        unmapFile(cpu, system_, as_, va, size, config_.access);
    }
    cpu.advance(cm.closeBase);
}

bool
ApacheWorker::step(sim::Cpu &cpu)
{
    quantumStart(cpu, system_, config_.access);
    for (std::uint64_t i = 0; i < config_.requestsPerQuantum
                              && requestsDone_ < config_.requests;
         i++) {
        serveOne(cpu);
        requestsDone_++;
    }
    return requestsDone_ < config_.requests;
}

std::vector<fs::Ino>
makeWebPages(sys::System &system, const std::string &prefix,
             std::uint64_t count, std::uint64_t bytes)
{
    std::vector<fs::Ino> pages;
    pages.reserve(count);
    for (std::uint64_t i = 0; i < count; i++) {
        pages.push_back(
            system.makeFile(prefix + std::to_string(i), bytes));
    }
    return pages;
}

} // namespace dax::wl
