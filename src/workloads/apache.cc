/**
 * @file
 * ApacheWorker implementation.
 */
#include "workloads/apache.h"

namespace dax::wl {

void
apacheServeRequest(sim::Cpu &cpu, sys::System &system,
                   vm::AddressSpace &as, fs::Ino ino,
                   std::uint64_t bytes, const AccessOptions &access)
{
    const sim::CostModel &cm = system.cm();

    // Request parsing / response generation compute.
    cpu.advance(cm.httpRequestOverhead);

    // Apache opens the page per request; the inode cache keeps this a
    // warm open in steady state.
    const fs::Inode &node = system.fs().inode(ino);
    cpu.advance(cm.openBase);
    (void)node;

    if (access.interface == Interface::Read) {
        // Copy 1: PMem -> private buffer (kernel read path).
        system.fs().read(cpu, ino, 0, nullptr, bytes);
        // Copy 2: buffer (cache-hot) -> socket buffers.
        cpu.advance(cm.socketSyscall);
        system.dram().writeKernel(cpu, 0, bytes, mem::WriteMode::Cached,
                                  mem::Pattern::Seq);
    } else {
        const std::uint64_t va = mapFile(cpu, system, as, ino, 0,
                                         bytes, false, access);
        if (va == 0)
            throw std::runtime_error("apache: map failed");
        // Single copy: PMem mapping -> socket buffers, performed by
        // the kernel through the user mapping (write(2)).
        cpu.advance(cm.socketSyscall);
        as.memRead(cpu, va, bytes, mem::Pattern::Seq, nullptr,
                   /*kernelCopy=*/true);
        unmapFile(cpu, system, as, va, bytes, access);
    }
    cpu.advance(cm.closeBase);
}

void
ApacheWorker::serveOne(sim::Cpu &cpu)
{
    const fs::Ino ino =
        config_.pages[rng_.below(config_.pages.size())];
    apacheServeRequest(cpu, system_, as_, ino, config_.pageBytes,
                       config_.access);
}

bool
ApacheWorker::step(sim::Cpu &cpu)
{
    quantumStart(cpu, system_, config_.access);
    for (std::uint64_t i = 0; i < config_.requestsPerQuantum
                              && requestsDone_ < config_.requests;
         i++) {
        serveOne(cpu);
        requestsDone_++;
    }
    return requestsDone_ < config_.requests;
}

std::vector<fs::Ino>
makeWebPages(sys::System &system, const std::string &prefix,
             std::uint64_t count, std::uint64_t bytes)
{
    std::vector<fs::Ino> pages;
    pages.reserve(count);
    for (std::uint64_t i = 0; i < count; i++) {
        pages.push_back(
            system.makeFile(prefix + std::to_string(i), bytes));
    }
    return pages;
}

} // namespace dax::wl
