/**
 * @file
 * Repetitive implementation.
 */
#include "workloads/repetitive.h"

namespace dax::wl {

void
Repetitive::oneOp(sim::Cpu &cpu)
{
    const std::uint64_t span = config_.fileBytes - config_.opBytes;
    std::uint64_t off;
    if (config_.randomOrder) {
        off = rng_.below(span);
        // Align records for realism (no torn records).
        off = off / config_.opBytes * config_.opBytes;
    } else {
        off = seqOff_;
        seqOff_ += config_.opBytes;
        if (seqOff_ + config_.opBytes > config_.fileBytes)
            seqOff_ = 0;
    }
    const mem::Pattern pattern = config_.randomOrder
                                     ? mem::Pattern::Rand
                                     : mem::Pattern::Seq;

    if (config_.access.interface == Interface::Read) {
        if (config_.write) {
            system_.fs().write(cpu, config_.ino, off, nullptr,
                               config_.opBytes);
            if (config_.writesPerSync != 0
                && ++writesSinceSync_ >= config_.writesPerSync) {
                system_.fs().fsync(cpu, config_.ino);
                writesSinceSync_ = 0;
            }
        } else {
            system_.fs().read(cpu, config_.ino, off, nullptr,
                              config_.opBytes, !config_.randomOrder);
            vm::processCached(cpu, system_.cm(), config_.opBytes);
        }
        return;
    }

    // Mapped access: AVX-512 memcpy with non-temporal stores for
    // writes (paper Section V-B methodology).
    if (config_.write) {
        const bool userSync = config_.writesPerSync == 0;
        as_.memWrite(cpu, va_ + off, config_.opBytes, pattern,
                     userSync ? mem::WriteMode::NtStore
                              : mem::WriteMode::Cached);
        if (!userSync && ++writesSinceSync_ >= config_.writesPerSync) {
            as_.msync(cpu, va_, config_.fileBytes);
            writesSinceSync_ = 0;
        }
    } else {
        as_.memRead(cpu, va_ + off, config_.opBytes, pattern);
    }
}

bool
Repetitive::step(sim::Cpu &cpu)
{
    quantumStart(cpu, system_, config_.access);
    if (config_.access.usesMmap() && va_ == 0) {
        va_ = mapFile(cpu, system_, as_, config_.ino, 0,
                      config_.fileBytes, config_.write, config_.access);
        if (va_ == 0)
            throw std::runtime_error("repetitive: map failed");
    }
    for (std::uint64_t i = 0;
         i < config_.opsPerQuantum && opsDone_ < config_.ops; i++) {
        oneOp(cpu);
        opsDone_++;
        if (config_.monitorPollOps != 0
            && opsDone_ % config_.monitorPollOps == 0
            && config_.access.interface == Interface::DaxVm) {
            system_.dax()->pollMonitor(cpu, as_, config_.ino);
        }
    }
    return opsDone_ < config_.ops;
}

} // namespace dax::wl
