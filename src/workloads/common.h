/**
 * @file
 * Shared workload plumbing: the interface under test (read syscalls,
 * default DAX-mmap, mmap+populate, DaxVM with flag combinations, LATR
 * unmap) and helpers to open/access/close files through it.
 */
#pragma once

#include <cstdint>
#include <string>

#include "sys/system.h"
#include "vm/file_io.h"

namespace dax::wl {

/** File-access interface under test. */
enum class Interface
{
    Read,         ///< read/write system calls
    Mmap,         ///< default DAX mmap (lazy faults)
    MmapPopulate, ///< mmap with MAP_POPULATE
    DaxVm,        ///< daxvm_mmap
};

struct AccessOptions
{
    Interface interface = Interface::Read;
    /** DaxVM flags. */
    bool ephemeral = false;
    bool asyncUnmap = false;
    bool nosync = false;
    /** Use MAP_SYNC (user-space durability over ext4 needs it). */
    bool mapSync = false;
    /** Replace munmap's shootdown with LATR lazy invalidation. */
    bool latr = false;

    unsigned
    daxFlags() const
    {
        unsigned flags = 0;
        if (ephemeral)
            flags |= vm::kMapEphemeral;
        if (asyncUnmap)
            flags |= vm::kMapUnmapAsync;
        if (nosync)
            flags |= vm::kMapNoMsync;
        if (mapSync)
            flags |= vm::kMapSync;
        return flags;
    }

    unsigned
    posixFlags() const
    {
        unsigned flags = 0;
        if (interface == Interface::MmapPopulate)
            flags |= vm::kMapPopulate;
        if (mapSync)
            flags |= vm::kMapSync;
        return flags;
    }

    bool usesMmap() const { return interface != Interface::Read; }

    /** Human-readable label used by benches. */
    std::string label() const;
};

/**
 * Map a file through the configured mapping interface.
 * @return user virtual address (0 on failure).
 */
std::uint64_t mapFile(sim::Cpu &cpu, sys::System &system,
                      vm::AddressSpace &as, fs::Ino ino,
                      std::uint64_t off, std::uint64_t len, bool write,
                      const AccessOptions &options);

/** Unmap through the configured interface (handles LATR/daxvm). */
void unmapFile(sim::Cpu &cpu, sys::System &system, vm::AddressSpace &as,
               std::uint64_t va, std::uint64_t len,
               const AccessOptions &options);

/** Quantum-start housekeeping: IPI disruption and LATR sweeps. */
void quantumStart(sim::Cpu &cpu, sys::System &system,
                  const AccessOptions &options);

} // namespace dax::wl
