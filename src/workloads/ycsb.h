/**
 * @file
 * YCSB workload driver over the KvStore (paper Figure 9c).
 *
 * Standard mixes: A 50r/50u, B 95r/5u, C 100r, D 95r(latest)/5i,
 * E 95scan/5i, plus the Load phases (pure inserts) of A and E.
 */
#pragma once

#include <cstdint>
#include <string>

#include "sim/rng.h"
#include "workloads/kvstore.h"

namespace dax::wl {

struct YcsbMix
{
    double read = 0.0;
    double update = 0.0;
    double insert = 0.0;
    double scan = 0.0;
    bool readLatest = false;
    std::string name;

    static YcsbMix loadA() { return {0, 0, 1.0, 0, false, "Load A"}; }
    static YcsbMix runA() { return {0.5, 0.5, 0, 0, false, "Run A"}; }
    static YcsbMix runB() { return {0.95, 0.05, 0, 0, false, "Run B"}; }
    static YcsbMix runC() { return {1.0, 0, 0, 0, false, "Run C"}; }
    static YcsbMix runD() { return {0.95, 0, 0.05, 0, true, "Run D"}; }
    static YcsbMix loadE() { return {0, 0, 1.0, 0, false, "Load E"}; }
    static YcsbMix runE() { return {0, 0, 0.05, 0.95, false, "Run E"}; }
};

class YcsbRunner : public sim::Task
{
  public:
    struct Config
    {
        KvStore *kv = nullptr;
        YcsbMix mix;
        /** Key space already loaded (inserts extend it). */
        std::uint64_t records = 100000;
        std::uint64_t ops = 100000;
        std::uint64_t opsPerQuantum = 64;
        unsigned scanLength = 16;
        std::uint64_t seed = 11;
    };

    explicit YcsbRunner(Config config)
        : config_(config), rng_(config.seed),
          zipf_(config.records > 0 ? config.records : 1)
    {}

    bool step(sim::Cpu &cpu) override;
    std::string name() const override { return "ycsb"; }

    std::uint64_t opsDone() const { return opsDone_; }

  private:
    Config config_;
    sim::Rng rng_;
    sim::Zipf zipf_;
    std::uint64_t nextInsert_ = 0;
    std::uint64_t opsDone_ = 0;
};

} // namespace dax::wl
