/**
 * @file
 * KvStore implementation.
 */
#include "workloads/kvstore.h"

#include <algorithm>

namespace dax::wl {

namespace {

/** Memtable insert/probe compute (skiplist-ish). */
constexpr sim::Time kMemtableOp = 250;
/** Per-SSTable index/bloom probe. */
constexpr sim::Time kIndexProbe = 220;

} // namespace

KvStore::KvStore(sys::System &system, vm::AddressSpace &as, Config config)
    : system_(system), as_(as), config_(std::move(config))
{
    sim::Cpu setup(nullptr, 0, 0);
    openWal(setup);
}

KvStore::~KvStore() = default;

std::uint64_t
KvStore::mapKvFile(sim::Cpu &cpu, fs::Ino ino, std::uint64_t bytes)
{
    const std::uint64_t va = mapFile(cpu, system_, as_, ino, 0, bytes,
                                     /*write=*/true, config_.access);
    if (va == 0)
        throw std::runtime_error("kvstore: map failed");
    return va;
}

void
KvStore::openWal(sim::Cpu &cpu)
{
    const std::uint64_t bytes =
        config_.memtableRecords * config_.recordBytes;
    if (!recycledWal_.empty()) {
        // Recycle the previous log file in place (no allocation, no
        // zeroing - the RocksDB log_recycling optimization).
        walPath_ = recycledWal_;
        recycledWal_.clear();
        walIno_ = *system_.fs().lookupPath(walPath_);
    } else {
        walPath_ = config_.dir + "wal" + std::to_string(serial_++);
        walIno_ = system_.fs().create(cpu, walPath_);
        if (!system_.fs().fallocate(cpu, walIno_, 0, bytes))
            throw std::runtime_error("kvstore: WAL out of space");
    }
    walVa_ = mapKvFile(cpu, walIno_, bytes);
    walOff_ = 0;
}

void
KvStore::put(sim::Cpu &cpu, std::uint64_t key)
{
    puts_++;
    // WAL append with non-temporal stores (user-space durability).
    as_.memWrite(cpu, walVa_ + walOff_, config_.recordBytes,
                 mem::Pattern::Seq, mem::WriteMode::NtStore);
    walOff_ += config_.recordBytes;
    cpu.advance(kMemtableOp);
    memtable_.insert(key);
    if (walOff_ >= config_.memtableRecords * config_.recordBytes)
        flushMemtable(cpu);
}

void
KvStore::flushMemtable(sim::Cpu &cpu)
{
    flushes_++;
    const std::uint64_t records = memtable_.size();
    const std::uint64_t bytes =
        std::max<std::uint64_t>(records, 1) * config_.recordBytes;

    Sst sst;
    sst.path = config_.dir + "sst" + std::to_string(serial_++);
    sst.ino = system_.fs().create(cpu, sst.path);
    if (!system_.fs().fallocate(cpu, sst.ino, 0, bytes))
        throw std::runtime_error("kvstore: SST out of space");
    sst.va = mapKvFile(cpu, sst.ino, bytes);
    // Sequential write-out of the sorted memtable.
    as_.memWrite(cpu, sst.va, bytes, mem::Pattern::Seq,
                 mem::WriteMode::NtStore);
    sst.keys.assign(memtable_.begin(), memtable_.end());
    ssts_.push_back(std::move(sst));
    memtable_.clear();

    // Retire the WAL: unmap and keep the file for recycling.
    unmapFile(cpu, system_, as_, walVa_,
              config_.memtableRecords * config_.recordBytes,
              config_.access);
    recycledWal_ = walPath_;
    openWal(cpu);
    maybeCompact(cpu);
}

void
KvStore::maybeCompact(sim::Cpu &cpu)
{
    if (ssts_.size() <= config_.compactionTrigger)
        return;
    compactions_++;
    const std::size_t width =
        std::min(config_.compactionWidth, ssts_.size());

    // Merge the oldest `width` tables into one.
    std::set<std::uint64_t> merged;
    std::uint64_t inputBytes = 0;
    for (std::size_t i = 0; i < width; i++) {
        Sst &sst = ssts_[i];
        const std::uint64_t bytes =
            std::max<std::uint64_t>(sst.keys.size(), 1)
            * config_.recordBytes;
        as_.memRead(cpu, sst.va, bytes, mem::Pattern::Seq);
        merged.insert(sst.keys.begin(), sst.keys.end());
        inputBytes += bytes;
    }
    const std::uint64_t outBytes =
        std::max<std::uint64_t>(merged.size(), 1)
        * config_.recordBytes;

    Sst out;
    out.path = config_.dir + "sst" + std::to_string(serial_++);
    out.ino = system_.fs().create(cpu, out.path);
    if (!system_.fs().fallocate(cpu, out.ino, 0, outBytes)) {
        // Transient ENOSPC (e.g. freed blocks still queued at the
        // pre-zero daemon): back off and retry at a later flush, as
        // RocksDB's compaction scheduler would.
        system_.fs().unlink(cpu, out.path);
        compactions_--;
        return;
    }
    out.va = mapKvFile(cpu, out.ino, outBytes);
    as_.memWrite(cpu, out.va, outBytes, mem::Pattern::Seq,
                 mem::WriteMode::NtStore);
    out.keys.assign(merged.begin(), merged.end());

    // Drop the inputs (unmap + unlink -> pre-zero daemon feed).
    for (std::size_t i = 0; i < width; i++) {
        Sst &sst = ssts_.front();
        const std::uint64_t bytes =
            std::max<std::uint64_t>(sst.keys.size(), 1)
            * config_.recordBytes;
        unmapFile(cpu, system_, as_, sst.va, bytes, config_.access);
        system_.fs().unlink(cpu, sst.path);
        ssts_.pop_front();
    }
    // The merged output becomes the oldest level.
    ssts_.push_front(std::move(out));
}

bool
KvStore::get(sim::Cpu &cpu, std::uint64_t key)
{
    gets_++;
    cpu.advance(kMemtableOp);
    if (memtable_.count(key) != 0)
        return true;
    // Newest-first SSTable probe.
    for (auto it = ssts_.rbegin(); it != ssts_.rend(); ++it) {
        cpu.advance(kIndexProbe);
        const auto &keys = it->keys;
        const auto pos =
            std::lower_bound(keys.begin(), keys.end(), key);
        if (pos != keys.end() && *pos == key) {
            const std::uint64_t idx = static_cast<std::uint64_t>(
                pos - keys.begin());
            as_.memRead(cpu, it->va + idx * config_.recordBytes,
                        config_.recordBytes, mem::Pattern::Rand);
            return true;
        }
    }
    return false;
}

void
KvStore::scan(sim::Cpu &cpu, std::uint64_t key, unsigned count)
{
    // Iterate `count` records across the newest table holding the
    // range (simplified merged iterator).
    cpu.advance(kMemtableOp);
    for (auto it = ssts_.rbegin(); it != ssts_.rend(); ++it) {
        cpu.advance(kIndexProbe);
        const auto &keys = it->keys;
        auto pos = std::lower_bound(keys.begin(), keys.end(), key);
        if (pos == keys.end())
            continue;
        std::uint64_t idx =
            static_cast<std::uint64_t>(pos - keys.begin());
        const std::uint64_t n =
            std::min<std::uint64_t>(count, keys.size() - idx);
        if (n == 0)
            continue;
        as_.memRead(cpu, it->va + idx * config_.recordBytes,
                    n * config_.recordBytes, mem::Pattern::Rand);
        return;
    }
}

} // namespace dax::wl
