/**
 * @file
 * Append workload (paper Figure 7): repeatedly create an empty file
 * and append a payload as one operation through the interface under
 * test, then recycle (unlink) the previous file - which, with DaxVM,
 * feeds the asynchronous pre-zero daemon.
 */
#pragma once

#include <cstdint>
#include <string>

#include "workloads/common.h"

namespace dax::wl {

class Append : public sim::Task
{
  public:
    struct Config
    {
        std::string prefix = "/append/";
        std::uint64_t appendBytes = 64 * 1024;
        std::uint64_t files = 100;
        /** fsync after each append (kernel durability) vs user-space. */
        bool syncEach = false;
        AccessOptions access;
    };

    Append(sys::System &system, vm::AddressSpace &as, Config config)
        : system_(system), as_(as), config_(std::move(config))
    {}

    bool step(sim::Cpu &cpu) override;
    std::string name() const override { return "append"; }

    std::uint64_t filesDone() const { return filesDone_; }
    std::uint64_t bytesDone() const
    {
        return filesDone_ * config_.appendBytes;
    }

  private:
    sys::System &system_;
    vm::AddressSpace &as_;
    Config config_;
    std::uint64_t filesDone_ = 0;
    std::string previous_;
};

} // namespace dax::wl
