/**
 * @file
 * pmem-RocksDB-like LSM key-value store (paper Figure 9c substrate).
 *
 * The storage interactions mirror Intel's PMem-optimized RocksDB:
 * SSTables and write-ahead logs live on the DAX file system and are
 * memory-mapped; writes go straight to PMem with non-temporal stores
 * and durability is managed from user-space (no fsync) - which over
 * ext4 requires MAP_SYNC and makes every first-touch write fault
 * commit the journal; WAL/SSTable files are recycled to curb paging
 * and zeroing costs.
 *
 * Structure: a DRAM memtable absorbs puts (logged to the WAL); full
 * memtables flush to L0 SSTables; when too many L0 tables pile up the
 * oldest ones are merged (compaction-lite). Gets probe the memtable
 * and then SSTables newest-first through an in-memory index.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "workloads/common.h"

namespace dax::wl {

class KvStore
{
  public:
    struct Config
    {
        std::string dir = "/kv/";
        std::uint64_t recordBytes = 4096;
        /** Memtable capacity in records (== WAL/SSTable size). */
        std::uint64_t memtableRecords = 4096;
        /** L0 tables triggering compaction. */
        std::size_t compactionTrigger = 8;
        /** Tables merged per compaction. */
        std::size_t compactionWidth = 4;
        AccessOptions access;
    };

    KvStore(sys::System &system, vm::AddressSpace &as, Config config);
    ~KvStore();

    /** Insert/update a record. */
    void put(sim::Cpu &cpu, std::uint64_t key);

    /** Point lookup. @return true when the key exists. */
    bool get(sim::Cpu &cpu, std::uint64_t key);

    /** Range scan of up to @p count records starting at @p key. */
    void scan(sim::Cpu &cpu, std::uint64_t key, unsigned count);

    // Introspection ------------------------------------------------------
    std::size_t sstables() const { return ssts_.size(); }
    std::uint64_t flushes() const { return flushes_; }
    std::uint64_t compactions() const { return compactions_; }
    std::uint64_t puts() const { return puts_; }
    std::uint64_t gets() const { return gets_; }

  private:
    struct Sst
    {
        std::string path;
        fs::Ino ino = 0;
        std::uint64_t va = 0;
        /** In-memory index block: sorted keys (host metadata). */
        std::vector<std::uint64_t> keys;
    };

    void openWal(sim::Cpu &cpu);
    void flushMemtable(sim::Cpu &cpu);
    void maybeCompact(sim::Cpu &cpu);
    std::uint64_t mapKvFile(sim::Cpu &cpu, fs::Ino ino,
                            std::uint64_t bytes);

    sys::System &system_;
    vm::AddressSpace &as_;
    Config config_;
    std::uint64_t serial_ = 0;

    /** Memtable: key set (record payloads are cost-only). */
    std::set<std::uint64_t> memtable_;
    std::string walPath_;
    fs::Ino walIno_ = 0;
    std::uint64_t walVa_ = 0;
    std::uint64_t walOff_ = 0;
    /** Recycled WAL file (paper: RocksDB recycles logs). */
    std::string recycledWal_;

    std::deque<Sst> ssts_; ///< newest at the back

    std::uint64_t flushes_ = 0;
    std::uint64_t compactions_ = 0;
    std::uint64_t puts_ = 0;
    std::uint64_t gets_ = 0;
};

} // namespace dax::wl
