/**
 * @file
 * PRedisServer implementation.
 */
#include "workloads/predis.h"

namespace dax::wl {

bool
PRedisServer::step(sim::Cpu &cpu)
{
    quantumStart(cpu, system_, config_.access);

    if (storeVa_ == 0) {
        // Server boot: map the persistent cache and index.
        const sim::Time bootStart = cpu.now();
        storeVa_ = mapFile(cpu, system_, as_, config_.store, 0,
                           config_.storeBytes, /*write=*/true,
                           config_.access);
        indexVa_ = mapFile(cpu, system_, as_, config_.index, 0,
                           config_.indexBytes, /*write=*/true,
                           config_.access);
        if (storeVa_ == 0 || indexVa_ == 0)
            throw std::runtime_error("predis: map failed");
        bootLatency_ = cpu.now() - bootStart;
        timeline_.emplace_back(cpu.now(), 0);
        return true;
    }

    const std::uint64_t values =
        config_.storeBytes / config_.valueBytes;
    for (std::uint64_t i = 0;
         i < config_.opsPerQuantum && opsDone_ < config_.ops; i++) {
        // GET: hash-table probe in the index, then the value read.
        const std::uint64_t v = rng_.below(values);
        const std::uint64_t slot =
            (v * 0x9e3779b97f4a7c15ULL) % (config_.indexBytes / 64);
        as_.memRead(cpu, indexVa_ + slot * 64, 64, mem::Pattern::Rand);
        as_.memRead(cpu, storeVa_ + v * config_.valueBytes,
                    config_.valueBytes, mem::Pattern::Rand);
        opsDone_++;
        if (opsDone_ % config_.sampleOps == 0) {
            timeline_.emplace_back(cpu.now(), opsDone_);
            // The MMU monitor migrates PMem-resident file tables to
            // DRAM when random-access walks dominate (Table III).
            if (config_.access.interface == Interface::DaxVm)
                system_.dax()->pollMonitor(cpu, as_, config_.store);
        }
    }
    return opsDone_ < config_.ops;
}

} // namespace dax::wl
