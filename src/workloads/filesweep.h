/**
 * @file
 * Ephemeral (read-once) file access workload: open N files, consume
 * their content once, close them - the server pattern behind paper
 * Figures 1a/1b/4. One file per engine quantum.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/common.h"

namespace dax::wl {

class Filesweep : public sim::Task
{
  public:
    struct Config
    {
        /** Paths this thread sweeps (usually disjoint per thread). */
        std::vector<std::string> paths;
        AccessOptions access;
        /** Extra compute per byte while consuming (0 = pure sum). */
        double computeNsPerByte = 0.0;
    };

    Filesweep(sys::System &system, vm::AddressSpace &as, Config config)
        : system_(system), as_(as), config_(std::move(config))
    {}

    bool step(sim::Cpu &cpu) override;
    std::string name() const override { return "filesweep"; }

    std::uint64_t filesDone() const { return filesDone_; }
    std::uint64_t bytesDone() const { return bytesDone_; }

  private:
    sys::System &system_;
    vm::AddressSpace &as_;
    Config config_;
    std::size_t next_ = 0;
    std::uint64_t filesDone_ = 0;
    std::uint64_t bytesDone_ = 0;
};

/**
 * Create @p count files of @p bytes each under @p prefix (untimed
 * setup). @return the created paths.
 */
std::vector<std::string> makeFileSet(sys::System &system,
                                     const std::string &prefix,
                                     std::uint64_t count,
                                     std::uint64_t bytes);

} // namespace dax::wl
