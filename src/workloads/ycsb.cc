/**
 * @file
 * YcsbRunner implementation.
 */
#include "workloads/ycsb.h"

namespace dax::wl {

bool
YcsbRunner::step(sim::Cpu &cpu)
{
    KvStore &kv = *config_.kv;
    if (nextInsert_ == 0)
        nextInsert_ = config_.records;

    for (std::uint64_t i = 0;
         i < config_.opsPerQuantum && opsDone_ < config_.ops; i++) {
        const double u = rng_.uniform();
        const YcsbMix &mix = config_.mix;
        if (u < mix.insert) {
            kv.put(cpu, nextInsert_++);
        } else if (u < mix.insert + mix.update) {
            kv.put(cpu, zipf_.next(rng_));
        } else if (u < mix.insert + mix.update + mix.scan) {
            kv.scan(cpu, zipf_.next(rng_), config_.scanLength);
        } else {
            std::uint64_t key;
            if (mix.readLatest && nextInsert_ > config_.records) {
                // Skew towards recently inserted keys.
                const std::uint64_t back =
                    zipf_.next(rng_) % (nextInsert_ - config_.records
                                        + 1);
                key = nextInsert_ - 1 - back;
            } else {
                key = zipf_.next(rng_);
            }
            kv.get(cpu, key);
        }
        opsDone_++;
    }
    return opsDone_ < config_.ops;
}

} // namespace dax::wl
