/**
 * @file
 * Multi-tenant open-loop mix: Apache, P-Redis and YCSB tenants
 * sharing one device and file system (docs/workloads.md).
 *
 * A Tenant packages one application model behind the OpenLoopService
 * hook: its own simulated process (address space), its files, its
 * arrival process, its server pool and its "openloop.<name>.*"
 * instruments. All tenants of a mix live on one sys::System, so they
 * contend for the real PMem bandwidth, file-system locks, journal and
 * TLB-shootdown machinery — the cross-tenant interference is the
 * point of the fig10 study.
 *
 * Per-tenant randomness: the mix derives tenant streams from one
 * master Rng with longJump() (2^192 apart); each tenant's arrival
 * clients sit 2^128 apart within that via jump() (see openloop.h),
 * and the serve-side stream uses the first jump stream beyond the
 * clients.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workloads/kvstore.h"
#include "workloads/openloop.h"
#include "workloads/ycsb.h"

namespace dax::wl {

enum class TenantKind
{
    Apache, ///< static pages: open + transfer + close per request
    PRedis, ///< mapped KV cache: index probe + value read per GET
    Ycsb,   ///< LSM KvStore ops per the configured mix
};

const char *tenantKindName(TenantKind kind);

struct TenantSpec
{
    std::string name = "tenant";
    TenantKind kind = TenantKind::Apache;
    ArrivalConfig arrival;
    /** Server pool size (engine threads in the shared domain). */
    unsigned servers = 4;
    /** Tail-latency SLO on arrival-to-completion latency. */
    sim::Time sloNs = 2000000;
    /** Exact number of requests the tenant drives. */
    std::uint64_t requests = 100000;
    AccessOptions access;

    // Apache ------------------------------------------------------------
    std::uint64_t pageCount = 64;
    std::uint64_t pageBytes = 4096;

    // P-Redis -----------------------------------------------------------
    std::uint64_t storeBytes = 64ULL << 20;
    std::uint64_t indexBytes = 8ULL << 20;
    std::uint64_t valueBytes = 4096;

    // YCSB --------------------------------------------------------------
    YcsbMix mix = YcsbMix::runB();
    std::uint64_t records = 20000;
    unsigned scanLength = 16;
};

class Tenant : public OpenLoopService
{
  public:
    /**
     * Creates the tenant's process and files (untimed setup).
     * @p stream is the tenant's master random stream — derive it from
     * the mix seed with Rng::longJump, never `seed + i`.
     */
    Tenant(sys::System &system, TenantSpec spec, sim::Rng stream);
    ~Tenant() override;

    /**
     * Phase-1 task generating the arrival schedule. Add it to the
     * engine in its own isolation domain; run() it to completion
     * before makeServers().
     */
    std::unique_ptr<sim::Task> makeGenTask();

    /**
     * Phase-1 warm-up task (shared domain): preloads the YCSB record
     * space. Null for tenants without a warm-up phase.
     */
    std::unique_ptr<sim::Task> makePreloadTask();

    /** Phase-2 server pool (shared domain). */
    std::vector<std::unique_ptr<sim::Task>> makeServers();

    /** Anchor the schedule's t=0 at virtual time @p base. */
    void beginService(sim::Time base) { queue_.base = base; }

    // OpenLoopService -----------------------------------------------------
    void serve(sim::Cpu &cpu, const Arrival &arrival) override;
    const AccessOptions &access() const override
    {
        return spec_.access;
    }

    const TenantSpec &spec() const { return spec_; }
    const OpenLoopQueue &queue() const { return queue_; }
    const OpenLoopStats &stats() const { return stats_; }

    /** Requests per second actually completed (0 before service). */
    double achievedRate() const;

  private:
    void serveApache(sim::Cpu &cpu);
    void servePRedis(sim::Cpu &cpu);
    void serveYcsb(sim::Cpu &cpu);

    sys::System &system_;
    TenantSpec spec_;
    std::unique_ptr<vm::AddressSpace> as_;
    sim::Rng stream_;
    sim::Rng serveRng_;
    OpenLoopQueue queue_;
    OpenLoopStats stats_;

    // Apache
    std::vector<fs::Ino> pages_;

    // P-Redis (booted lazily on first serve)
    fs::Ino store_ = 0;
    fs::Ino index_ = 0;
    std::uint64_t storeVa_ = 0;
    std::uint64_t indexVa_ = 0;

    // YCSB
    std::unique_ptr<KvStore> kv_;
    std::unique_ptr<sim::Zipf> zipf_;
    std::uint64_t nextInsert_ = 0;
};

} // namespace dax::wl
