/**
 * @file
 * Tenant implementation (see tenant.h).
 */
#include "workloads/tenant.h"

#include <stdexcept>

#include "sys/system.h"
#include "workloads/apache.h"

namespace dax::wl {

const char *
tenantKindName(TenantKind kind)
{
    switch (kind) {
      case TenantKind::Apache:
        return "apache";
      case TenantKind::PRedis:
        return "predis";
      case TenantKind::Ycsb:
        return "ycsb";
    }
    return "?";
}

Tenant::Tenant(sys::System &system, TenantSpec spec, sim::Rng stream)
    : system_(system), spec_(std::move(spec)), as_(system.newProcess()),
      stream_(stream),
      serveRng_(stream.stream(spec_.arrival.clients + 1)),
      stats_(OpenLoopStats::make(
          sim::MetricsScope(system.metrics(), "openloop")
              .scope(spec_.name),
          spec_.sloNs))
{
    const std::string root = "/" + spec_.name + "/";
    switch (spec_.kind) {
      case TenantKind::Apache:
        pages_ = makeWebPages(system_, root + "page", spec_.pageCount,
                              spec_.pageBytes);
        break;
      case TenantKind::PRedis:
        store_ = system_.makeFile(root + "store", spec_.storeBytes);
        index_ = system_.makeFile(root + "index", spec_.indexBytes);
        break;
      case TenantKind::Ycsb: {
        KvStore::Config kv;
        kv.dir = root;
        kv.access = spec_.access;
        kv_ = std::make_unique<KvStore>(system_, *as_, kv);
        zipf_ = std::make_unique<sim::Zipf>(
            spec_.records > 0 ? spec_.records : 1);
        break;
      }
    }
}

Tenant::~Tenant() = default;

std::unique_ptr<sim::Task>
Tenant::makeGenTask()
{
    return std::make_unique<ArrivalGenTask>(
        spec_.arrival, stream_, spec_.requests, &queue_.schedule,
        "gen:" + spec_.name);
}

std::unique_ptr<sim::Task>
Tenant::makePreloadTask()
{
    if (spec_.kind != TenantKind::Ycsb)
        return nullptr;
    // Load phase: fill the record space so run-phase gets hit. Runs
    // in the shared domain of the generation run, concurrently (in
    // virtual time) with the per-tenant schedule synthesis.
    return std::make_unique<sim::FnTask>(
        [this](sim::Cpu &cpu) {
            const std::uint64_t batch = 256;
            for (std::uint64_t i = 0;
                 i < batch && nextInsert_ < spec_.records; i++)
                kv_->put(cpu, nextInsert_++);
            return nextInsert_ < spec_.records;
        },
        "load:" + spec_.name);
}

std::vector<std::unique_ptr<sim::Task>>
Tenant::makeServers()
{
    std::vector<std::unique_ptr<sim::Task>> servers;
    servers.reserve(spec_.servers);
    for (unsigned s = 0; s < spec_.servers; s++) {
        servers.push_back(std::make_unique<OpenLoopServer>(
            system_, *this, queue_, stats_, spec_.name,
            spec_.name + ":" + std::to_string(s)));
    }
    return servers;
}

void
Tenant::serve(sim::Cpu &cpu, const Arrival &arrival)
{
    (void)arrival;
    switch (spec_.kind) {
      case TenantKind::Apache:
        serveApache(cpu);
        break;
      case TenantKind::PRedis:
        servePRedis(cpu);
        break;
      case TenantKind::Ycsb:
        serveYcsb(cpu);
        break;
    }
}

void
Tenant::serveApache(sim::Cpu &cpu)
{
    const fs::Ino ino = pages_[serveRng_.below(pages_.size())];
    apacheServeRequest(cpu, system_, *as_, ino, spec_.pageBytes,
                       spec_.access);
}

void
Tenant::servePRedis(sim::Cpu &cpu)
{
    if (storeVa_ == 0) {
        // Server boot on the first request: map the persistent cache
        // and index (P-Redis model, predis.h). The first request's
        // latency carries the boot cost, as a real restart would.
        storeVa_ = mapFile(cpu, system_, *as_, store_, 0,
                           spec_.storeBytes, /*write=*/true,
                           spec_.access);
        indexVa_ = mapFile(cpu, system_, *as_, index_, 0,
                           spec_.indexBytes, /*write=*/true,
                           spec_.access);
        if (storeVa_ == 0 || indexVa_ == 0)
            throw std::runtime_error("tenant: predis map failed");
    }
    // GET: hash-table probe in the index, then the value read.
    const std::uint64_t values = spec_.storeBytes / spec_.valueBytes;
    const std::uint64_t v = serveRng_.below(values);
    const std::uint64_t slot =
        (v * 0x9e3779b97f4a7c15ULL) % (spec_.indexBytes / 64);
    as_->memRead(cpu, indexVa_ + slot * 64, 64, mem::Pattern::Rand);
    as_->memRead(cpu, storeVa_ + v * spec_.valueBytes,
                 spec_.valueBytes, mem::Pattern::Rand);
}

void
Tenant::serveYcsb(sim::Cpu &cpu)
{
    if (nextInsert_ < spec_.records)
        throw std::logic_error("tenant: ycsb served before preload");
    const double u = serveRng_.uniform();
    const YcsbMix &mix = spec_.mix;
    if (u < mix.insert) {
        kv_->put(cpu, nextInsert_++);
    } else if (u < mix.insert + mix.update) {
        kv_->put(cpu, zipf_->next(serveRng_));
    } else if (u < mix.insert + mix.update + mix.scan) {
        kv_->scan(cpu, zipf_->next(serveRng_), spec_.scanLength);
    } else {
        std::uint64_t key;
        if (mix.readLatest && nextInsert_ > spec_.records) {
            const std::uint64_t back =
                zipf_->next(serveRng_)
                % (nextInsert_ - spec_.records + 1);
            key = nextInsert_ - 1 - back;
        } else {
            key = zipf_->next(serveRng_);
        }
        kv_->get(cpu, key);
    }
}

double
Tenant::achievedRate() const
{
    if (queue_.lastDone <= queue_.base || queue_.next == 0)
        return 0.0;
    return static_cast<double>(queue_.next) * 1e9
         / static_cast<double>(queue_.lastDone - queue_.base);
}

} // namespace dax::wl
