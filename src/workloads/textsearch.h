/**
 * @file
 * Text search (ag / The Silver Searcher) over a Linux-source-tree-like
 * corpus (paper Figure 9a): threads sweep a shared list of small
 * files, searching each one for a string - an ephemeral access
 * pattern that never copies data out of PMem with mapped access.
 *
 * The sweep itself reuses the Filesweep task with a per-byte search
 * compute cost; this header provides the corpus generator.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/filesweep.h"

namespace dax::wl {

/**
 * Create a corpus resembling the Linux source tree: @p files files
 * (paper: 68 K) with a lognormal size distribution (median ~8 KB)
 * plus a few large git pack files; total ~0.9 GB at paper scale.
 * @return paths in creation order.
 */
std::vector<std::string> makeSourceTreeCorpus(sys::System &system,
                                              const std::string &prefix,
                                              std::uint64_t files,
                                              std::uint64_t seed = 7,
                                              std::uint64_t maxTotalBytes
                                              = 0);

/** Slice @p paths for thread @p idx of @p count (round robin). */
std::vector<std::string> sliceForThread(
    const std::vector<std::string> &paths, unsigned idx,
    unsigned count);

} // namespace dax::wl
