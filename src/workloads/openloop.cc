/**
 * @file
 * Open-loop arrival generation and serving (see openloop.h).
 */
#include "workloads/openloop.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/trace.h"
#include "sys/system.h"
#include "workloads/common.h"

namespace dax::wl {

namespace {

/** Exponential variate with mean @p meanNs, >= 1 ns. */
sim::Time
expGap(sim::Rng &rng, double meanNs)
{
    const double u = rng.uniform();
    const double gap = -std::log(1.0 - u) * meanNs;
    const auto ns = static_cast<sim::Time>(gap);
    return ns < 1 ? 1 : ns;
}

/** Geometric session length with mean @p mean, >= 1. */
std::uint64_t
sessionLength(sim::Rng &rng, double mean)
{
    if (mean <= 1.0)
        return 1;
    const double p = 1.0 / mean;
    const double u = rng.uniform();
    const double len =
        1.0 + std::floor(std::log(1.0 - u) / std::log(1.0 - p));
    if (len < 1.0)
        return 1;
    return static_cast<std::uint64_t>(len);
}

} // namespace

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Poisson:
        return "poisson";
      case ArrivalKind::Bursty:
        return "bursty";
      case ArrivalKind::Diurnal:
        return "diurnal";
    }
    return "?";
}

// ---------------------------------------------------------------------
// ArrivalProcess
// ---------------------------------------------------------------------

ArrivalProcess::ArrivalProcess(ArrivalConfig config, sim::Rng base)
    : config_(config), base_(base), modRng_(base.stream(0))
{
    if (config_.clients == 0)
        config_.clients = 1;
    if (config_.ratePerSec <= 0.0)
        config_.ratePerSec = 1.0;
}

double
ArrivalProcess::peakFactor() const
{
    switch (config_.kind) {
      case ArrivalKind::Poisson:
        return 1.0;
      case ArrivalKind::Bursty: {
        // Normalize so the time-averaged factor is 1: the burst state
        // runs at burstRateFactor x the calm state, weighted by the
        // stationary dwell fractions.
        const double pOn =
            static_cast<double>(config_.meanBurstNs)
            / static_cast<double>(config_.meanBurstNs
                                  + config_.meanCalmNs);
        const double fCalm =
            1.0 / ((1.0 - pOn) + pOn * config_.burstRateFactor);
        return fCalm * config_.burstRateFactor;
      }
      case ArrivalKind::Diurnal:
        return 1.0 + config_.diurnalAmplitude;
    }
    return 1.0;
}

void
ArrivalProcess::ensureModulation(sim::Time t)
{
    // Append-only extension from a dedicated stream: the segment
    // sequence is identical no matter which client generation first
    // required coverage of time t.
    const double pOn = static_cast<double>(config_.meanBurstNs)
                     / static_cast<double>(config_.meanBurstNs
                                           + config_.meanCalmNs);
    const double fCalm =
        1.0 / ((1.0 - pOn) + pOn * config_.burstRateFactor);
    const double fBurst = fCalm * config_.burstRateFactor;
    if (segments_.empty()) {
        segments_.push_back({0, fCalm});
        modStateBurst_ = false;
        modCovered_ = expGap(modRng_,
                             static_cast<double>(config_.meanCalmNs));
    }
    while (modCovered_ <= t) {
        modStateBurst_ = !modStateBurst_;
        segments_.push_back(
            {modCovered_, modStateBurst_ ? fBurst : fCalm});
        modCovered_ += expGap(
            modRng_, static_cast<double>(modStateBurst_
                                             ? config_.meanBurstNs
                                             : config_.meanCalmNs));
    }
}

double
ArrivalProcess::factorAt(sim::Time t)
{
    switch (config_.kind) {
      case ArrivalKind::Poisson:
        return 1.0;
      case ArrivalKind::Bursty: {
        ensureModulation(t);
        // Last segment with start <= t.
        auto it = std::upper_bound(
            segments_.begin(), segments_.end(), t,
            [](sim::Time v, const RateSegment &s) { return v < s.start; });
        return std::prev(it)->factor;
      }
      case ArrivalKind::Diurnal: {
        const auto period =
            static_cast<std::uint64_t>(config_.diurnalPeriodNs);
        const std::uint64_t phase = period == 0 ? 0 : t % period;
        const double half = static_cast<double>(period) / 2.0;
        const double x = static_cast<double>(phase);
        // Triangle in [0, 1]: up over the first half, down the second.
        const double tri = x < half ? x / half : 2.0 - x / half;
        return (1.0 - config_.diurnalAmplitude)
             + 2.0 * config_.diurnalAmplitude * tri;
      }
    }
    return 1.0;
}

std::vector<Arrival>
ArrivalProcess::generateClient(unsigned client, std::uint64_t count)
{
    std::vector<Arrival> out;
    out.reserve(count);
    sim::Rng rng = base_.stream(1 + client);
    const double peak = peakFactor();
    // Candidate stream at the per-client peak rate; thinning by the
    // mean-normalized factor recovers the modulated process with mean
    // rate ratePerSec / clients.
    const double peakMeanGapNs =
        1e9 / (config_.ratePerSec * peak
               / static_cast<double>(config_.clients));
    sim::Time t = 0;
    std::uint64_t sessionLeft = 0;
    while (out.size() < count) {
        t += expGap(rng, peakMeanGapNs);
        if (peak > 1.0 && rng.uniform() * peak >= factorAt(t))
            continue;
        const bool newSession = sessionLeft == 0;
        if (newSession)
            sessionLeft =
                sessionLength(rng, config_.meanSessionRequests);
        sessionLeft--;
        out.push_back({t, client, newSession});
    }
    return out;
}

std::vector<Arrival>
ArrivalProcess::mergeSchedules(std::vector<std::vector<Arrival>> perClient)
{
    std::vector<Arrival> merged;
    std::size_t total = 0;
    for (const auto &v : perClient)
        total += v.size();
    merged.reserve(total);
    for (auto &v : perClient) {
        const std::size_t mid = merged.size();
        merged.insert(merged.end(), v.begin(), v.end());
        std::inplace_merge(merged.begin(), merged.begin() + mid,
                           merged.end(),
                           [](const Arrival &a, const Arrival &b) {
                               if (a.at != b.at)
                                   return a.at < b.at;
                               return a.client < b.client;
                           });
    }
    return merged;
}

// ---------------------------------------------------------------------
// ArrivalGenTask
// ---------------------------------------------------------------------

ArrivalGenTask::ArrivalGenTask(ArrivalConfig config, sim::Rng base,
                               std::uint64_t totalRequests,
                               std::vector<Arrival> *out,
                               std::string label)
    : process_(config, base), totalRequests_(totalRequests), out_(out),
      label_(std::move(label))
{
    perClient_.resize(process_.config().clients);
}

bool
ArrivalGenTask::step(sim::Cpu &cpu)
{
    // Token virtual cost: generation is control-plane work; keeping
    // it tiny leaves the gen run's makespan far below the service
    // run's start, so the engine's final makespan is the service one.
    cpu.advance(100);
    const unsigned clients = process_.config().clients;
    if (nextClient_ < clients) {
        // Split the exact total across clients (first streams absorb
        // the remainder), so the tenant drives exactly totalRequests.
        const std::uint64_t per = totalRequests_ / clients;
        const std::uint64_t extra =
            nextClient_ < totalRequests_ % clients ? 1 : 0;
        perClient_[nextClient_] =
            process_.generateClient(nextClient_, per + extra);
        nextClient_++;
        return true;
    }
    *out_ = ArrivalProcess::mergeSchedules(std::move(perClient_));
    perClient_.clear();
    return false;
}

// ---------------------------------------------------------------------
// OpenLoopStats / OpenLoopServer
// ---------------------------------------------------------------------

OpenLoopStats
OpenLoopStats::make(sim::MetricsScope scope, sim::Time sloNs)
{
    OpenLoopStats stats;
    stats.requests = scope.counter("requests");
    stats.connections = scope.counter("connections");
    stats.sloViolations = scope.counter("slo_violations");
    stats.latency = scope.histogram("latency_ns");
    stats.queueDelay = scope.histogram("queue_delay_ns");
    stats.service = scope.histogram("service_ns");
    stats.sloNs = sloNs;
    return stats;
}

OpenLoopServer::OpenLoopServer(sys::System &system,
                               OpenLoopService &service,
                               OpenLoopQueue &queue,
                               OpenLoopStats &stats, std::string tenant,
                               std::string label)
    : system_(system), service_(service), queue_(queue), stats_(stats),
      tenant_(std::move(tenant)), label_(std::move(label))
{}

bool
OpenLoopServer::step(sim::Cpu &cpu)
{
    quantumStart(cpu, system_, service_.access());
    if (queue_.next >= queue_.schedule.size())
        return false;
    const std::uint64_t seq = queue_.next;
    const Arrival arrival = queue_.schedule[queue_.next++];
    const sim::Time arrivedAt = queue_.base + arrival.at;

    sim::SpanRecorder &rec = sim::Trace::get().spans();
    const bool traced = rec.enabled(sim::TraceCat::Openloop);
    const std::uint32_t track = sim::spanTrackOf(cpu);
    if (traced) {
        // Claim chain: one arrow per tenant threads the FCFS claims,
        // showing in Perfetto how its requests hop across server
        // tracks. Claims are serialized by min-clock stepping, so the
        // chain (and its single id) is deterministic.
        if (queue_.flowId == 0) {
            queue_.flowId =
                rec.flowStart(sim::TraceCat::Openloop, track,
                              cpu.coreId(), cpu.now(), "claim");
        } else if (queue_.next >= queue_.schedule.size()) {
            rec.flowEnd(sim::TraceCat::Openloop, track, cpu.coreId(),
                        cpu.now(), "claim", queue_.flowId);
            queue_.flowId = 0;
        } else {
            rec.flowStep(sim::TraceCat::Openloop, track, cpu.coreId(),
                         cpu.now(), "claim", queue_.flowId);
        }
    }
    // Open loop: an idle server waits for the arrival; a busy pool
    // starts late and the difference is queueing delay.
    cpu.advanceTo(arrivedAt);
    const sim::Time startedAt = cpu.now();
    sim::SpanRecorder::CaptureMark mark;
    if (traced) {
        // Mark before the begin so the request span itself is part of
        // the exemplar capture.
        mark = rec.captureMark(track);
        char detail[96];
        std::snprintf(detail, sizeof detail,
                      "tenant=%s seq=%llu arr=%llu", tenant_.c_str(),
                      static_cast<unsigned long long>(seq),
                      static_cast<unsigned long long>(arrivedAt));
        rec.begin(sim::TraceCat::Openloop, track, cpu.coreId(),
                  cpu.now(), "request", detail);
    }
    if (arrival.newSession) {
        cpu.advance(system_.cm().tcpAccept);
        stats_.connections.addAt(cpu.coreId());
    }
    service_.serve(cpu, arrival);
    if (traced) {
        rec.end(sim::TraceCat::Openloop, track, cpu.coreId(), cpu.now(),
                "request");
    }
    const sim::Time doneAt = cpu.now();
    if (doneAt > queue_.lastDone)
        queue_.lastDone = doneAt;
    stats_.requests.addAt(cpu.coreId());
    stats_.latency.recordAt(cpu.coreId(), doneAt - arrivedAt);
    stats_.queueDelay.recordAt(cpu.coreId(), startedAt - arrivedAt);
    stats_.service.recordAt(cpu.coreId(), doneAt - startedAt);
    if (stats_.sloNs != 0 && doneAt - arrivedAt > stats_.sloNs)
        stats_.sloViolations.addAt(cpu.coreId());
    if (traced) {
        rec.recordRequestExemplar(tenant_, seq, arrivedAt, startedAt,
                                  doneAt, track, mark, kExemplarTopK);
    }
    system_.timelineTick(cpu);
    return queue_.next < queue_.schedule.size();
}

} // namespace dax::wl
