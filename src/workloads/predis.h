/**
 * @file
 * P-Redis boot/serving model (paper Figure 9b): a PMem-resident
 * key-value cache is memory-mapped at server start and gets served
 * with random GET operations. With default mmap the warm-up period is
 * dominated by demand faults; MAP_POPULATE stalls startup; DaxVM's
 * O(1) mmap reaches full throughput instantly.
 *
 * The task records a throughput timeline (operations completed at
 * virtual timestamps) that the bench turns into Figure 9b's series.
 */
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/rng.h"
#include "workloads/common.h"

namespace dax::wl {

class PRedisServer : public sim::Task
{
  public:
    struct Config
    {
        fs::Ino store = 0;        ///< key-value cache file
        fs::Ino index = 0;        ///< hash-table index file
        std::uint64_t storeBytes = 0;
        std::uint64_t indexBytes = 0;
        std::uint64_t valueBytes = 16 * 1024;
        std::uint64_t ops = 100000;
        std::uint64_t opsPerQuantum = 16;
        /** Record a timeline sample every N ops. */
        std::uint64_t sampleOps = 4096;
        AccessOptions access;
        std::uint64_t seed = 5;
    };

    PRedisServer(sys::System &system, vm::AddressSpace &as,
                 Config config)
        : system_(system), as_(as), config_(config), rng_(config.seed)
    {}

    bool step(sim::Cpu &cpu) override;
    std::string name() const override { return "predis"; }

    std::uint64_t opsDone() const { return opsDone_; }
    sim::Time bootLatency() const { return bootLatency_; }

    /** (virtual time, total ops completed) samples. */
    const std::vector<std::pair<sim::Time, std::uint64_t>> &
    timeline() const
    {
        return timeline_;
    }

  private:
    sys::System &system_;
    vm::AddressSpace &as_;
    Config config_;
    sim::Rng rng_;
    std::uint64_t storeVa_ = 0;
    std::uint64_t indexVa_ = 0;
    sim::Time bootLatency_ = 0;
    std::uint64_t opsDone_ = 0;
    std::vector<std::pair<sim::Time, std::uint64_t>> timeline_;
};

} // namespace dax::wl
