/**
 * @file
 * Apache mpm_event worker model (paper Figures 8a/8b): each worker
 * thread serves HTTP requests for static pages stored on PMem - it
 * opens the page, transfers its content to the socket either through
 * a private buffer (read) or straight from the mapping (zero-copy),
 * and closes it. mmap-based serving stresses the virtual memory layer
 * with frequent m(un)map requests.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "workloads/common.h"

namespace dax::wl {

class ApacheWorker : public sim::Task
{
  public:
    struct Config
    {
        /** Inodes of the hosted pages (pre-created, pre-warmed). */
        std::vector<fs::Ino> pages;
        std::uint64_t pageBytes = 32 * 1024;
        std::uint64_t requests = 10000;
        std::uint64_t requestsPerQuantum = 1;
        AccessOptions access;
        std::uint64_t seed = 1;
    };

    ApacheWorker(sys::System &system, vm::AddressSpace &as,
                 Config config)
        : system_(system), as_(as), config_(std::move(config)),
          rng_(config_.seed)
    {}

    bool step(sim::Cpu &cpu) override;
    std::string name() const override { return "apache"; }

    std::uint64_t requestsDone() const { return requestsDone_; }

  private:
    void serveOne(sim::Cpu &cpu);

    sys::System &system_;
    vm::AddressSpace &as_;
    Config config_;
    sim::Rng rng_;
    std::uint64_t requestsDone_ = 0;
};

/** Create @p count pages of @p bytes; returns their inodes. */
std::vector<fs::Ino> makeWebPages(sys::System &system,
                                  const std::string &prefix,
                                  std::uint64_t count,
                                  std::uint64_t bytes);

/**
 * Serve one static-page HTTP request: parse/respond compute, open,
 * transfer @p bytes of @p ino to the socket through the configured
 * interface, close. Shared by the closed-loop ApacheWorker and the
 * open-loop Apache tenant (workloads/tenant.h).
 */
void apacheServeRequest(sim::Cpu &cpu, sys::System &system,
                        vm::AddressSpace &as, fs::Ino ino,
                        std::uint64_t bytes,
                        const AccessOptions &access);

} // namespace dax::wl
