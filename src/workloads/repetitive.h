/**
 * @file
 * Repetitive access over one large mapped file (database pattern):
 * sequential/random reads and overwrites of small records, paper
 * Figures 1c/5 and the sync experiment of Figure 6.
 */
#pragma once

#include <cstdint>
#include <string>

#include "sim/rng.h"
#include "workloads/common.h"

namespace dax::wl {

class Repetitive : public sim::Task
{
  public:
    struct Config
    {
        fs::Ino ino = 0;
        std::uint64_t fileBytes = 0;
        std::uint32_t opBytes = 4096;
        bool write = false;
        bool randomOrder = false;
        /** Total operations this thread performs. */
        std::uint64_t ops = 0;
        /** Operations per engine quantum. */
        std::uint64_t opsPerQuantum = 8;
        /** fsync/msync every N writes (0 = user-space durability). */
        std::uint64_t writesPerSync = 0;
        /** Poll the DaxVM MMU monitor every N ops (0 = never). */
        std::uint64_t monitorPollOps = 0;
        AccessOptions access;
        std::uint64_t seed = 1;
    };

    Repetitive(sys::System &system, vm::AddressSpace &as, Config config)
        : system_(system), as_(as), config_(config), rng_(config.seed)
    {}

    bool step(sim::Cpu &cpu) override;
    std::string name() const override { return "repetitive"; }

    std::uint64_t opsDone() const { return opsDone_; }
    std::uint64_t bytesDone() const
    {
        return opsDone_ * config_.opBytes;
    }

  private:
    void oneOp(sim::Cpu &cpu);

    sys::System &system_;
    vm::AddressSpace &as_;
    Config config_;
    sim::Rng rng_;
    std::uint64_t va_ = 0;
    std::uint64_t seqOff_ = 0;
    std::uint64_t opsDone_ = 0;
    std::uint64_t writesSinceSync_ = 0;
};

} // namespace dax::wl
