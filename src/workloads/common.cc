/**
 * @file
 * Shared workload plumbing implementation.
 */
#include "workloads/common.h"

namespace dax::wl {

std::string
AccessOptions::label() const
{
    switch (interface) {
      case Interface::Read:
        return "read";
      case Interface::Mmap:
        return mapSync ? "mmap(sync)" : "mmap";
      case Interface::MmapPopulate:
        return "populate";
      case Interface::DaxVm: {
        std::string s = "daxvm";
        if (ephemeral)
            s += "+eph";
        if (asyncUnmap)
            s += "+async";
        if (nosync)
            s += "+nosync";
        return s;
      }
    }
    return "?";
}

std::uint64_t
mapFile(sim::Cpu &cpu, sys::System &system, vm::AddressSpace &as,
        fs::Ino ino, std::uint64_t off, std::uint64_t len, bool write,
        const AccessOptions &options)
{
    switch (options.interface) {
      case Interface::Read:
        return 0;
      case Interface::Mmap:
      case Interface::MmapPopulate:
        return as.mmap(cpu, ino, off, len, write, options.posixFlags());
      case Interface::DaxVm:
        return system.dax()->mmap(cpu, as, ino, off, len, write,
                                  options.daxFlags());
    }
    return 0;
}

void
unmapFile(sim::Cpu &cpu, sys::System &system, vm::AddressSpace &as,
          std::uint64_t va, std::uint64_t len,
          const AccessOptions &options)
{
    if (options.interface == Interface::DaxVm) {
        system.dax()->munmap(cpu, as, va);
        return;
    }
    if (options.latr) {
        system.latr().munmapLazy(cpu, as, va);
        return;
    }
    as.munmap(cpu, va, len);
}

void
quantumStart(sim::Cpu &cpu, sys::System &system,
             const AccessOptions &options)
{
    system.hub().drainDisruption(cpu);
    if (options.latr)
        system.latr().drain(cpu);
}

} // namespace dax::wl
