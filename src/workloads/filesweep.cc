/**
 * @file
 * Filesweep implementation.
 */
#include "workloads/filesweep.h"

namespace dax::wl {

bool
Filesweep::step(sim::Cpu &cpu)
{
    if (next_ >= config_.paths.size())
        return false;
    quantumStart(cpu, system_, config_.access);

    const std::string &path = config_.paths[next_++];
    auto open = system_.open(cpu, path);
    if (!open)
        throw std::runtime_error("filesweep: missing " + path);
    const fs::Ino ino = open->ino;
    const std::uint64_t size = system_.fs().inode(ino).size;

    if (config_.access.interface == Interface::Read) {
        // read() into a private buffer, then consume it cache-hot.
        system_.fs().read(cpu, ino, 0, nullptr, size);
        vm::processCached(cpu, system_.cm(), size);
    } else {
        const std::uint64_t va = mapFile(cpu, system_, as_, ino, 0,
                                         size, false, config_.access);
        if (va == 0)
            throw std::runtime_error("filesweep: map failed " + path);
        // Consume the content in place at 8-byte granularity.
        as_.memRead(cpu, va, size, mem::Pattern::Seq);
        unmapFile(cpu, system_, as_, va, size, config_.access);
    }
    if (config_.computeNsPerByte > 0.0)
        vm::chargeCompute(cpu, config_.computeNsPerByte, size);

    system_.vfs().close(cpu, ino);
    filesDone_++;
    bytesDone_ += size;
    return next_ < config_.paths.size();
}

std::vector<std::string>
makeFileSet(sys::System &system, const std::string &prefix,
            std::uint64_t count, std::uint64_t bytes)
{
    std::vector<std::string> paths;
    paths.reserve(count);
    for (std::uint64_t i = 0; i < count; i++) {
        const std::string path = prefix + std::to_string(i);
        system.makeFile(path, bytes);
        paths.push_back(path);
    }
    return paths;
}

} // namespace dax::wl
