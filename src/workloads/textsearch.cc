/**
 * @file
 * Corpus generation for the text-search workload.
 */
#include "workloads/textsearch.h"

#include <cmath>

namespace dax::wl {

std::vector<std::string>
makeSourceTreeCorpus(sys::System &system, const std::string &prefix,
                     std::uint64_t files, std::uint64_t seed,
                     std::uint64_t maxTotalBytes)
{
    sim::Rng rng(seed);
    std::vector<std::string> paths;
    paths.reserve(files);
    std::uint64_t total = 0;
    for (std::uint64_t i = 0; i < files; i++) {
        // Source files: lognormal in log2 space, median 2^13 = 8 KB,
        // clipped to [512 B, 512 KB]; every ~10000th file is a large
        // git pack (up to tens of MB).
        std::uint64_t size;
        if (i % 10000 == 9999) {
            size = (16ULL << 20) + rng.below(32ULL << 20);
        } else {
            const double u1 = rng.uniform();
            const double u2 = rng.uniform();
            const double n = std::sqrt(-2.0 * std::log(u1 + 1e-12))
                           * std::cos(6.283185307179586 * u2);
            double l = 13.0 + 1.6 * n;
            if (l < 9.0)
                l = 9.0;
            if (l > 19.0)
                l = 19.0;
            size = static_cast<std::uint64_t>(std::pow(2.0, l));
        }
        if (maxTotalBytes != 0 && total + size > maxTotalBytes)
            break;
        const std::string path = prefix + std::to_string(i);
        system.makeFile(path, size);
        paths.push_back(path);
        total += size;
    }
    return paths;
}

std::vector<std::string>
sliceForThread(const std::vector<std::string> &paths, unsigned idx,
               unsigned count)
{
    std::vector<std::string> slice;
    for (std::size_t i = idx; i < paths.size(); i += count)
        slice.push_back(paths[i]);
    return slice;
}

} // namespace dax::wl
