/**
 * @file
 * Append implementation.
 */
#include "workloads/append.h"

namespace dax::wl {

bool
Append::step(sim::Cpu &cpu)
{
    if (filesDone_ >= config_.files)
        return false;
    quantumStart(cpu, system_, config_.access);

    const std::string path =
        config_.prefix + std::to_string(cpu.threadId()) + "_"
        + std::to_string(filesDone_);
    const fs::Ino ino = system_.fs().create(cpu, path);

    if (config_.access.interface == Interface::Read) {
        // Append via one write syscall (allocating, persists data).
        system_.fs().write(cpu, ino, 0, nullptr, config_.appendBytes);
        if (config_.syncEach)
            system_.fs().fsync(cpu, ino);
    } else {
        // MM append: allocate + zero blocks, map them, store with
        // non-temporal stores (paper Section III-B).
        if (!system_.fs().fallocate(cpu, ino, 0, config_.appendBytes))
            throw std::runtime_error("append: out of space");
        const std::uint64_t va =
            mapFile(cpu, system_, as_, ino, 0, config_.appendBytes,
                    /*write=*/true, config_.access);
        if (va == 0)
            throw std::runtime_error("append: map failed");
        as_.memWrite(cpu, va, config_.appendBytes, mem::Pattern::Seq,
                     mem::WriteMode::NtStore);
        if (config_.syncEach)
            as_.msync(cpu, va, config_.appendBytes);
        unmapFile(cpu, system_, as_, va, config_.appendBytes,
                  config_.access);
    }

    // Recycle the previous file: its blocks flow to the pre-zero
    // daemon (when enabled) and get reused by the next append.
    if (!previous_.empty())
        system_.fs().unlink(cpu, previous_);
    previous_ = path;
    filesDone_++;
    return filesDone_ < config_.files;
}

} // namespace dax::wl
